// Package device simulates battery-powered Android phones running on-device
// training. It substitutes for the paper's physical testbed (Nexus 6,
// Nexus 6P, Mate 10, Pixel 2): big.LITTLE core clusters, an interactive-style
// DVFS governor, an RC thermal model with soft throttling and hard trips
// (big-cluster shutdown, the Snapdragon 810 pathology), and an energy
// account. Profiles are calibrated so that simulated per-epoch times
// reproduce Table II of the paper within a few percent, including the
// Nexus 6P's superlinear slowdown on longer epochs.
package device

import "fmt"

// CoreCluster describes one CPU cluster of an asymmetric SoC.
type CoreCluster struct {
	Name       string
	Cores      int
	MaxFreqGHz float64
	Big        bool
}

// Profile is the static description of a phone model. Throughput anchors
// express the device's *effective* training throughput (GFLOP/s at full
// frequency) at two workload intensities: a light model (LeNet-class,
// ~10 MFLOPs/sample training cost) and a heavy model (VGG-class,
// ~200 MFLOPs/sample). Real phones are not FLOP-proportional across model
// sizes (cache behaviour, BLAS kernel efficiency), which is exactly the
// paper's Observation 1; interpolating between two measured anchors
// captures that.
type Profile struct {
	Model    string
	SoC      string
	Clusters []CoreCluster

	// Throughput anchors (GFLOP/s at max frequency, thermally cold).
	TputSmall, TputLarge float64
	// AnchorSmall/AnchorLarge are the per-sample *training* FLOP costs the
	// anchors correspond to.
	AnchorSmall, AnchorLarge float64

	// Utilization at each anchor (0..1]: the fraction of peak power the
	// workload draws. Heavy models on weak memory systems underutilize the
	// big cores (paper §III-A, Observation 2).
	UtilSmall, UtilLarge float64

	// Thermal RC model: dT/dt = (P − Cooling·(T − Ambient)) / ThermalMass.
	ThermalMassJPerC float64 // J/°C
	CoolingWPerC     float64 // W/°C
	AmbientC         float64
	PeakWatts        float64 // package power at full utilization & frequency

	// SoftTripC caps the frequency factor at ThrottleFactor when exceeded.
	SoftTripC      float64
	ThrottleFactor float64
	// HardTripC takes the big cluster offline (throughput × BigOffFactor)
	// until the temperature falls below HardTripC − HysteresisC.
	// Zero disables the hard trip.
	HardTripC    float64
	BigOffFactor float64
	HysteresisC  float64

	// Governor ramp: the interactive governor reaches full clock over
	// roughly this many seconds of sustained load.
	RampSeconds float64

	// BatteryJ is the usable battery energy (J) for energy accounting.
	BatteryJ float64
}

// String implements fmt.Stringer.
func (p Profile) String() string { return fmt.Sprintf("%s (%s)", p.Model, p.SoC) }

// MeanFreqGHz returns the mean per-core maximum frequency, the quantity the
// paper's "Proportional" baseline scheduler uses as its notion of
// processing power.
func (p Profile) MeanFreqGHz() float64 {
	cores, sum := 0, 0.0
	for _, c := range p.Clusters {
		cores += c.Cores
		sum += float64(c.Cores) * c.MaxFreqGHz
	}
	if cores == 0 {
		return 0
	}
	return sum / float64(cores)
}

// Nexus6 returns the Nexus 6 profile (Snapdragon 805, 4×2.7 GHz,
// symmetric). Old but strong at small kernels: Table II shows it beating
// Mate 10 on LeNet (Observation 1).
func Nexus6() Profile {
	return Profile{
		Model: "Nexus6", SoC: "Snapdragon 805",
		Clusters:  []CoreCluster{{Name: "krait", Cores: 4, MaxFreqGHz: 2.7, Big: true}},
		TputSmall: 1.06, TputLarge: 1.25,
		AnchorSmall: anchorSmallFlops, AnchorLarge: anchorLargeFlops,
		UtilSmall: 0.85, UtilLarge: 0.95,
		ThermalMassJPerC: 45, CoolingWPerC: 0.45, AmbientC: 25, PeakWatts: 8.0,
		SoftTripC: 40, ThrottleFactor: 0.93,
		HardTripC: 0, BigOffFactor: 1, HysteresisC: 3,
		RampSeconds: 2, BatteryJ: 3220 * 3.85 * 3.6, // 3220 mAh
	}
}

// Nexus6P returns the Nexus 6P profile (Snapdragon 810, 4×1.55 + 4×2.0 GHz
// big.LITTLE). The 810's notorious heat problems make the big cluster trip
// offline under sustained load, so epoch time grows superlinearly with data
// size (Table II: 69 s for 3K LeNet samples but 220 s for 6K).
func Nexus6P() Profile {
	return Profile{
		Model: "Nexus6P", SoC: "Snapdragon 810",
		Clusters: []CoreCluster{
			{Name: "a53", Cores: 4, MaxFreqGHz: 1.55},
			{Name: "a57", Cores: 4, MaxFreqGHz: 2.0, Big: true},
		},
		TputSmall: 0.60, TputLarge: 1.16,
		AnchorSmall: anchorSmallFlops, AnchorLarge: anchorLargeFlops,
		UtilSmall: 1.0, UtilLarge: 0.60,
		ThermalMassJPerC: 12, CoolingWPerC: 0.32, AmbientC: 25, PeakWatts: 10.0,
		SoftTripC: 43, ThrottleFactor: 0.97,
		HardTripC: 47, BigOffFactor: 0.36, HysteresisC: 15,
		RampSeconds: 2, BatteryJ: 3450 * 3.82 * 3.6,
	}
}

// Mate10 returns the Huawei Mate 10 profile (Kirin 970, 4×2.36 + 4×1.8 GHz).
// Strong on heavy convolutional workloads, surprisingly weak on small
// kernels (Table II: 45 s LeNet vs Nexus 6's 31 s).
func Mate10() Profile {
	return Profile{
		Model: "Mate10", SoC: "Kirin 970",
		Clusters: []CoreCluster{
			{Name: "a53", Cores: 4, MaxFreqGHz: 1.8},
			{Name: "a73", Cores: 4, MaxFreqGHz: 2.36, Big: true},
		},
		TputSmall: 0.715, TputLarge: 1.74,
		AnchorSmall: anchorSmallFlops, AnchorLarge: anchorLargeFlops,
		UtilSmall: 0.8, UtilLarge: 0.9,
		ThermalMassJPerC: 60, CoolingWPerC: 0.65, AmbientC: 25, PeakWatts: 6.0,
		SoftTripC: 52, ThrottleFactor: 0.95,
		HardTripC: 0, BigOffFactor: 1, HysteresisC: 3,
		RampSeconds: 2, BatteryJ: 4000 * 3.82 * 3.6,
	}
}

// Pixel2 returns the Pixel 2 profile (Snapdragon 835, 4×2.35 + 4×1.9 GHz),
// the fastest device in the testbed.
func Pixel2() Profile {
	return Profile{
		Model: "Pixel2", SoC: "Snapdragon 835",
		Clusters: []CoreCluster{
			{Name: "kryo-silver", Cores: 4, MaxFreqGHz: 1.9},
			{Name: "kryo-gold", Cores: 4, MaxFreqGHz: 2.35, Big: true},
		},
		TputSmall: 1.30, TputLarge: 1.86,
		AnchorSmall: anchorSmallFlops, AnchorLarge: anchorLargeFlops,
		UtilSmall: 0.85, UtilLarge: 0.92,
		ThermalMassJPerC: 55, CoolingWPerC: 0.60, AmbientC: 25, PeakWatts: 5.5,
		SoftTripC: 50, ThrottleFactor: 0.94,
		HardTripC: 0, BigOffFactor: 1, HysteresisC: 3,
		RampSeconds: 2, BatteryJ: 2700 * 3.85 * 3.6,
	}
}

// Throughput-anchor intensities: per-sample training FLOPs of the
// paper-scale LeNet and VGG6 on 28×28 input.
const (
	anchorSmallFlops = 10.5e6
	anchorLargeFlops = 205e6
)

// Catalog returns all four phone profiles keyed by model name.
func Catalog() map[string]Profile {
	return map[string]Profile{
		"Nexus6":  Nexus6(),
		"Nexus6P": Nexus6P(),
		"Mate10":  Mate10(),
		"Pixel2":  Pixel2(),
	}
}

// Testbed returns the paper's three device combinations (§VII):
//
//	I:   1×Nexus6, 1×Mate10, 1×Pixel2                 (3 devices)
//	II:  2×Nexus6, 2×Nexus6P, 1×Mate10, 1×Pixel2      (6 devices)
//	III: 4×Nexus6, 2×Nexus6P, 2×Mate10, 2×Pixel2      (10 devices)
func Testbed(id int) []Profile {
	switch id {
	case 1:
		return []Profile{Nexus6(), Mate10(), Pixel2()}
	case 2:
		return []Profile{Nexus6(), Nexus6(), Nexus6P(), Nexus6P(), Mate10(), Pixel2()}
	case 3:
		return []Profile{
			Nexus6(), Nexus6(), Nexus6(), Nexus6(),
			Nexus6P(), Nexus6P(),
			Mate10(), Mate10(),
			Pixel2(), Pixel2(),
		}
	}
	panic(fmt.Sprintf("device: unknown testbed %d (want 1, 2 or 3)", id))
}
