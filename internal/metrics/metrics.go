// Package metrics provides classification quality measures beyond plain
// accuracy: confusion matrices, per-class precision/recall/F1 and macro
// averages. The outlier experiments (paper §III-C) use per-class recall to
// show that a "Missing" class scores zero recall even when overall
// accuracy looks acceptable.
package metrics

import (
	"fmt"
	"strings"
)

// Confusion is a K×K confusion matrix: Counts[true][predicted].
type Confusion struct {
	Classes int
	Counts  [][]int
}

// NewConfusion allocates a K-class confusion matrix.
func NewConfusion(classes int) *Confusion {
	c := &Confusion{Classes: classes, Counts: make([][]int, classes)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, classes)
	}
	return c
}

// Add records predictions against truths. The slices must have equal
// length; out-of-range labels panic.
func (c *Confusion) Add(truth, pred []int) {
	if len(truth) != len(pred) {
		panic(fmt.Sprintf("metrics: %d truths vs %d predictions", len(truth), len(pred)))
	}
	for i, y := range truth {
		c.Counts[y][pred[i]]++
	}
}

// Total returns the number of recorded samples.
func (c *Confusion) Total() int {
	n := 0
	for _, row := range c.Counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Accuracy returns the overall fraction correct (0 for an empty matrix).
func (c *Confusion) Accuracy() float64 {
	total, correct := 0, 0
	for i, row := range c.Counts {
		for j, v := range row {
			total += v
			if i == j {
				correct += v
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// Recall returns the per-class recall (diagonal over row sum); classes
// with no samples report 0.
func (c *Confusion) Recall(class int) float64 {
	row := c.Counts[class]
	total := 0
	for _, v := range row {
		total += v
	}
	if total == 0 {
		return 0
	}
	return float64(row[class]) / float64(total)
}

// Precision returns the per-class precision (diagonal over column sum);
// classes never predicted report 0.
func (c *Confusion) Precision(class int) float64 {
	total := 0
	for i := range c.Counts {
		total += c.Counts[i][class]
	}
	if total == 0 {
		return 0
	}
	return float64(c.Counts[class][class]) / float64(total)
}

// F1 returns the per-class harmonic mean of precision and recall.
func (c *Confusion) F1(class int) float64 {
	p, r := c.Precision(class), c.Recall(class)
	if p+r == 0 { //fedlint:allow floateq — precision/recall are ratios of integer counts; both are exactly 0 iff the counts are
		return 0
	}
	return 2 * p * r / (p + r)
}

// MacroRecall averages recall over classes that appear in the data.
func (c *Confusion) MacroRecall() float64 {
	sum, seen := 0.0, 0
	for k := 0; k < c.Classes; k++ {
		total := 0
		for _, v := range c.Counts[k] {
			total += v
		}
		if total == 0 {
			continue
		}
		sum += c.Recall(k)
		seen++
	}
	if seen == 0 {
		return 0
	}
	return sum / float64(seen)
}

// WorstClass returns the class with the lowest recall among classes
// present in the data, and that recall. Returns (-1, 0) for empty data.
func (c *Confusion) WorstClass() (int, float64) {
	worst, worstR := -1, 2.0
	for k := 0; k < c.Classes; k++ {
		total := 0
		for _, v := range c.Counts[k] {
			total += v
		}
		if total == 0 {
			continue
		}
		if r := c.Recall(k); r < worstR {
			worst, worstR = k, r
		}
	}
	if worst < 0 {
		return -1, 0
	}
	return worst, worstR
}

// String renders the matrix with per-class recall.
func (c *Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "accuracy %.4f, macro recall %.4f\n", c.Accuracy(), c.MacroRecall())
	for k := 0; k < c.Classes; k++ {
		fmt.Fprintf(&b, "class %d: recall %.3f precision %.3f f1 %.3f\n",
			k, c.Recall(k), c.Precision(k), c.F1(k))
	}
	return b.String()
}
