package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPerfectPredictions(t *testing.T) {
	c := NewConfusion(3)
	c.Add([]int{0, 1, 2, 0}, []int{0, 1, 2, 0})
	if c.Accuracy() != 1 {
		t.Fatalf("accuracy %v", c.Accuracy())
	}
	for k := 0; k < 3; k++ {
		if c.Recall(k) != 1 || c.Precision(k) != 1 || c.F1(k) != 1 {
			t.Fatalf("class %d not perfect", k)
		}
	}
	if c.MacroRecall() != 1 {
		t.Fatal("macro recall")
	}
	if c.Total() != 4 {
		t.Fatalf("total %d", c.Total())
	}
}

func TestKnownConfusion(t *testing.T) {
	c := NewConfusion(2)
	// truth 0: predicted 0,0,1 ; truth 1: predicted 1.
	c.Add([]int{0, 0, 0, 1}, []int{0, 0, 1, 1})
	if got := c.Accuracy(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("accuracy %v", got)
	}
	if got := c.Recall(0); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("recall0 %v", got)
	}
	if got := c.Precision(1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("precision1 %v", got)
	}
	f1 := c.F1(1)
	want := 2 * 0.5 * 1.0 / 1.5
	if math.Abs(f1-want) > 1e-12 {
		t.Fatalf("f1 %v, want %v", f1, want)
	}
}

func TestMissingClassZeroRecall(t *testing.T) {
	// The fig3b "Missing" situation: class 2 exists in truth but the model
	// never learned it.
	c := NewConfusion(3)
	c.Add([]int{0, 1, 2, 2}, []int{0, 1, 0, 1})
	if c.Recall(2) != 0 {
		t.Fatal("missing class must have zero recall")
	}
	worst, r := c.WorstClass()
	if worst != 2 || r != 0 {
		t.Fatalf("worst class (%d, %v)", worst, r)
	}
	// Accuracy still looks OK at 0.5 — the metric the paper's Fig 3b
	// conceals without per-class analysis.
	if c.Accuracy() != 0.5 {
		t.Fatalf("accuracy %v", c.Accuracy())
	}
}

func TestEmptyAndAbsentClasses(t *testing.T) {
	c := NewConfusion(4)
	if c.Accuracy() != 0 || c.MacroRecall() != 0 {
		t.Fatal("empty matrix should report zeros")
	}
	if w, r := c.WorstClass(); w != -1 || r != 0 {
		t.Fatalf("empty worst (%d, %v)", w, r)
	}
	c.Add([]int{1}, []int{1})
	// Classes 0, 2, 3 absent: macro recall over present classes only.
	if c.MacroRecall() != 1 {
		t.Fatalf("macro recall %v", c.MacroRecall())
	}
	if c.Precision(0) != 0 || c.Recall(0) != 0 || c.F1(0) != 0 {
		t.Fatal("absent class metrics should be 0")
	}
}

func TestAddPanicsOnMismatch(t *testing.T) {
	c := NewConfusion(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Add([]int{0}, []int{0, 1})
}

func TestAccuracyMatchesDirectCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(8)
		n := 1 + rng.Intn(200)
		truth := make([]int, n)
		pred := make([]int, n)
		correct := 0
		for i := range truth {
			truth[i] = rng.Intn(k)
			pred[i] = rng.Intn(k)
			if truth[i] == pred[i] {
				correct++
			}
		}
		c := NewConfusion(k)
		c.Add(truth, pred)
		if c.Total() != n {
			return false
		}
		return math.Abs(c.Accuracy()-float64(correct)/float64(n)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRenders(t *testing.T) {
	c := NewConfusion(2)
	c.Add([]int{0, 1}, []int{0, 1})
	if s := c.String(); s == "" {
		t.Fatal("empty render")
	}
}
