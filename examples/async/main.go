// Async vs sync: measures the trade-off the paper settles by argument
// (§II-B) — asynchronous aggregation removes the straggler barrier but
// injects stale gradients. This example runs both modes on the same data
// and device mix and prints time, staleness and accuracy side by side,
// plus a decentralized gossip run for comparison.
package main

import (
	"fmt"
	"log"

	"fedsched"
)

func main() {
	tb := fedsched.NewTestbed(1) // Nexus6, Mate10, Pixel2
	train := fedsched.SMNIST(1500, 11)
	test := fedsched.SMNIST(500, 11)
	part := fedsched.PartitionIID(train, 3, 7)

	cfg := fedsched.RunConfig{
		Arch: fedsched.LeNetSmall(1, 16, 16, 10), Rounds: 8,
		LR: 0.02, Momentum: 0.9, Seed: 7,
	}

	// Synchronous FedAvg: every round waits for the slowest phone.
	syncHist, err := tb.RunFederated(cfg, train, part, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sync  : %3d local epochs  %7.1f virtual s  accuracy %.3f\n",
		cfg.Rounds*3, syncHist.TotalSeconds, syncHist.FinalAccuracy)

	// Asynchronous: same total local epochs, no barrier.
	clients, err := tb.Clients(train, part)
	if err != nil {
		log.Fatal(err)
	}
	asyncHist, err := fedsched.RunAsync(fedsched.AsyncConfig{
		Config: cfg, MaxUpdates: cfg.Rounds * 3, MixRate: 0.4, StalenessPower: 1,
	}, clients, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("async : %3d updates       %7.1f virtual s  accuracy %.3f  (mean staleness %.2f)\n",
		asyncHist.Updates, asyncHist.VirtualSeconds, asyncHist.FinalAccuracy, asyncHist.MeanStaleness)

	// Decentralized gossip: no parameter server at all.
	gClients, err := tb.Clients(train, part)
	if err != nil {
		log.Fatal(err)
	}
	gossipHist, err := fedsched.RunGossip(fedsched.GossipConfig{
		Config: cfg, Topology: fedsched.Ring,
	}, gClients, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gossip: %3d rounds        %7.1f virtual s  accuracy %.3f (mean), %.3f (best)\n",
		gossipHist.Rounds, gossipHist.TotalSeconds, gossipHist.MeanAccuracy, gossipHist.BestAccuracy)

	fmt.Println("\nThe paper chooses synchronous aggregation: async saves wall time per")
	fmt.Println("update but its stale gradients cap accuracy; Fed-LBAP instead removes")
	fmt.Println("the straggler cost while keeping consistent synchronous updates.")
}
