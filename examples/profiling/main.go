// Offline profiling: builds the paper's two-step performance profile
// (§IV-B, Fig 4) for a device, persists it to JSON, reloads it, and uses
// it to predict epoch times for an architecture the profiler never saw.
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"fedsched/internal/device"
	"fedsched/internal/nn"
	"fedsched/internal/profile"
)

func main() {
	dev := device.New(device.Mate10())
	suite := profile.Suite(1, 28, 28, 10)
	fmt.Printf("profiling %s with %d architectures × %d data sizes...\n",
		dev.Model, len(suite), len(profile.DefaultSizes))
	prof, err := profile.BuildOffline(dev, suite, profile.DefaultSizes)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nstep-1 regressions (time = β0 + β1·convParams + β2·denseParams):")
	for _, f := range prof.Step1 {
		fmt.Printf("  %5d samples: β=(%.2f, %.2e, %.2e)  R²=%.4f\n",
			f.DataSize, f.Coef[0], f.Coef[1], f.Coef[2], f.R2)
	}

	// Persist and reload — profiles are built offline once and shipped.
	blob, err := json.Marshal(prof)
	if err != nil {
		log.Fatal(err)
	}
	var loaded profile.DeviceProfile
	if err := json.Unmarshal(blob, &loaded); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserialized profile: %d bytes\n", len(blob))

	// Predict an unseen architecture (a LeNet scaled 1.5×).
	unseen := nn.LeNetVariant(1, 28, 28, 10, 1.5)
	fmt.Printf("\npredictions for unseen %s (%d params):\n", unseen.Name, unseen.ParamCount())
	fmt.Printf("  %-8s  %-14s  %-14s  %s\n", "samples", "predicted [s]", "simulated [s]", "error")
	for _, n := range []int{1000, 2500, 5000} {
		pred := loaded.Predict(unseen, n)
		meas := dev.ColdEpochTime(unseen, n)
		fmt.Printf("  %-8d  %-14.1f  %-14.1f  %+.1f%%\n", n, pred, meas, 100*(pred-meas)/meas)
	}
}
