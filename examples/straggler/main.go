// Straggler mitigation: shows how the Nexus 6P's thermal collapse drags a
// synchronous federated round under naive scheduling, and how Fed-LBAP
// sidesteps it by load *un*balancing (paper §III, Observation 2/4 and
// Fig 5's Testbed II effect).
package main

import (
	"fmt"
	"log"

	"fedsched"
	"fedsched/internal/device"
	"fedsched/internal/nn"
)

func main() {
	// First, watch the straggler in isolation: per-batch time on a cold
	// Nexus 6P running LeNet. The big cluster trips offline mid-epoch.
	d := device.New(device.Nexus6P())
	arch := nn.LeNet(1, 28, 28, 10)
	_, trace := d.TrainSamples(arch, 6000, 20)
	fmt.Println("Nexus6P per-batch time (every 25th batch):")
	for i := 0; i < len(trace); i += 25 {
		pt := trace[i]
		state := "big cores ON "
		if !pt.BigOnline {
			state = "big cores OFF"
		}
		fmt.Printf("  batch %3d: %.2f s  %.1f °C  %s\n", pt.Batch, pt.Seconds, pt.TempC, state)
	}

	// Now the federated view: Testbed II (two Nexus 6P among six phones),
	// 60K samples per round.
	tb := fedsched.NewTestbed(2)
	req, err := tb.Request(arch, 60000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-round makespans over 4 consecutive rounds (heat accumulates):")
	for _, s := range []fedsched.Scheduler{fedsched.Equal, fedsched.Proportional, fedsched.FedLBAP} {
		asg, err := s.Schedule(req, nil)
		if err != nil {
			log.Fatal(err)
		}
		spans, err := tb.SimulateRounds(arch, asg, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s", s.Name())
		for _, v := range spans {
			fmt.Printf("  %6.0f s", v)
		}
		fmt.Printf("   (straggler share: %d samples)\n", worstDeviceSamples(asg))
	}
	fmt.Println("\nFed-LBAP starves the thermally-limited Nexus6P devices and the")
	fmt.Println("round time drops; Equal/Proportional keep feeding them and stall.")
}

// worstDeviceSamples reports how much data the two Nexus6P units (indices
// 2 and 3 in Testbed II) received.
func worstDeviceSamples(asg *fedsched.Assignment) int {
	return (asg.Shards[2] + asg.Shards[3]) * 100
}
