// Non-IID scheduling: reproduces the paper's α/β trade-off (Fig 6) on the
// S(I) scenario — a fast device that unfortunately holds only two classes,
// one of which nobody else has. Sweeping α shifts load towards class-rich
// devices; β pulls unseen-class outliers back in.
package main

import (
	"fmt"
	"log"

	"fedsched"
)

func main() {
	tb := fedsched.NewTestbed(1) // Nexus6, Mate10, Pixel2
	arch := fedsched.LeNet(3, 32, 32, 10)

	// Paper Table IV, scenario S(I): class 7 exists ONLY on Pixel2 — the
	// fastest phone but the poorest class coverage.
	classSets := [][]int{
		{0, 1, 2, 3, 4, 5, 6, 9}, // Nexus6
		{2, 3, 4, 5, 6, 8},       // Mate10
		{7, 8},                   // Pixel2 (unique class 7)
	}

	fmt.Println("Fed-MinAvg schedules for 50K samples (samples per device):")
	fmt.Printf("%-18s %-10s %-10s %-10s %-12s\n", "(alpha,beta)", "Nexus6", "Mate10", "Pixel2", "makespan[s]")
	for _, p := range []struct{ alpha, beta float64 }{
		{100, 0}, {1000, 0}, {5000, 0}, {100, 2}, {5000, 2},
	} {
		asg, err := tb.ScheduleNonIID(arch, 50000, classSets, 10, p.alpha, p.beta)
		if err != nil {
			log.Fatal(err)
		}
		s := asg.Samples(fedsched.ShardSize)
		fmt.Printf("(%6.0f, %1.0f)        %-10d %-10d %-10d %-12.0f\n",
			p.alpha, p.beta, s[0], s[1], s[2], asg.PredictedMakespan)
	}

	fmt.Println("\nAccuracy consequence (reduced-scale training):")
	train := fedsched.SCIFAR(1800, 99)
	test := fedsched.SCIFAR(600, 99)
	for _, p := range []struct{ alpha, beta float64 }{{5000, 0}, {5000, 2}} {
		asg, err := tb.ScheduleNonIID(arch, 50000, classSets, 10, p.alpha, p.beta)
		if err != nil {
			log.Fatal(err)
		}
		// Rescale the paper-size schedule onto the small training set.
		sizes := make([]int, len(asg.Shards))
		for j, s := range asg.Samples(fedsched.ShardSize) {
			sizes[j] = s * train.Len() / 50000
		}
		part := fedsched.PartitionByClasses(train, classSets, sizes, 5)
		hist, err := tb.RunFederated(fedsched.RunConfig{
			Arch: fedsched.LeNetSmall(3, 16, 16, 10), Rounds: 8,
			LR: 0.02, Momentum: 0.9, Seed: 5,
		}, train, part, test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  alpha=%4.0f beta=%1.0f → accuracy %.3f (Pixel2 got %d samples; it alone holds class 7)\n",
			p.alpha, p.beta, hist.FinalAccuracy, len(part[2]))
	}
}
