// Quickstart: profile a mobile testbed, compute a Fed-LBAP schedule for
// IID data, compare it against the FedAvg-style equal split, and run a
// real federated training round on the simulated phones.
package main

import (
	"fmt"
	"log"

	"fedsched"
)

func main() {
	// The paper's Testbed II: 2×Nexus6, 2×Nexus6P (the stragglers),
	// 1×Mate10, 1×Pixel2, all on WiFi.
	tb := fedsched.NewTestbed(2)
	arch := fedsched.LeNet(1, 28, 28, 10) // ~205K-parameter LeNet
	fmt.Printf("architecture: %s, %d params (%.1f MB payload)\n",
		arch.Name, arch.ParamCount(), float64(arch.SizeBytes())/1e6)

	// Schedule 60K MNIST-scale samples. Fed-LBAP partitions the data so
	// that the slowest participant finishes as early as possible.
	req, err := tb.Request(arch, 60000)
	if err != nil {
		log.Fatal(err)
	}
	optimal, err := fedsched.FedLBAP.Schedule(req, nil)
	if err != nil {
		log.Fatal(err)
	}
	equal, err := fedsched.Equal.Schedule(req, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nschedule (samples per device):")
	for j, u := range req.Users {
		fmt.Printf("  %-11s Fed-LBAP %6d   Equal %6d\n",
			u.Name, optimal.Shards[j]*100, equal.Shards[j]*100)
	}
	fmt.Printf("\npredicted makespan: Fed-LBAP %.0f s vs Equal %.0f s (%.1fx speedup)\n",
		optimal.PredictedMakespan, equal.PredictedMakespan,
		equal.PredictedMakespan/optimal.PredictedMakespan)

	// Verify on the thermal simulator: two synchronous rounds each.
	for name, asg := range map[string]*fedsched.Assignment{"Fed-LBAP": optimal, "Equal": equal} {
		spans, err := tb.SimulateRounds(arch, asg, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("simulated rounds (%s): %.0f s, %.0f s\n", name, spans[0], spans[1])
	}

	// Finally, run real federated training (reduced scale) with the
	// Fed-LBAP partition shape.
	train := fedsched.SMNIST(1200, 42)
	test := fedsched.SMNIST(400, 42)
	sizes := make([]int, len(optimal.Shards))
	total := 0
	for j, s := range optimal.Shards {
		sizes[j] = s * train.Len() / req.TotalShards
		total += sizes[j]
	}
	sizes[0] += train.Len() - total // rounding remainder
	part := fedsched.PartitionIIDSizes(train, sizes, 7)
	hist, err := tb.RunFederated(fedsched.RunConfig{
		Arch: fedsched.LeNetSmall(1, 16, 16, 10), Rounds: 5,
		LR: 0.02, Momentum: 0.9, Seed: 7,
	}, train, part, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfederated training: %d rounds, final accuracy %.3f, %.0f simulated seconds\n",
		len(hist.Rounds), hist.FinalAccuracy, hist.TotalSeconds)
}
