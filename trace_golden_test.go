package fedsched

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"fedsched/internal/device"
	"fedsched/internal/fl"
	"fedsched/internal/network"
	"fedsched/internal/sched"
	"fedsched/internal/trace"
)

// updateGolden regenerates the golden traces under testdata/trace:
//
//	go test -run TestGoldenTrace . -args -update-golden
//
// (or `make trace-golden`). Review the resulting diff before committing —
// a golden change is a behaviour change.
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden trace files under testdata/trace")

// testbedDevices instantiates fresh devices and links for a testbed, the
// same way Testbed.SimulateRounds does internally.
func testbedDevices(tb *Testbed) ([]*device.Device, []network.Link) {
	devs := make([]*device.Device, len(tb.Profiles))
	links := make([]network.Link, len(tb.Profiles))
	for i, p := range tb.Profiles {
		devs[i] = device.New(p)
		links[i] = tb.Link
	}
	return devs, links
}

// lbapGoldenTrace: Fed-LBAP on the paper's 6-device testbed — solver
// probes, the schedule, then three simulated rounds.
func lbapGoldenTrace(t *testing.T) []trace.Event {
	t.Helper()
	rec := NewTraceRecorder(0)
	tb := NewTestbed(2)
	arch := LeNet(1, 28, 28, 10)
	req, err := tb.Request(arch, 60000)
	if err != nil {
		t.Fatal(err)
	}
	req.Trace = rec
	asg, err := FedLBAP.Schedule(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	devs, links := testbedDevices(tb)
	if _, err := fl.SimulateRoundsTraced(arch, devs, links, asg.Samples(ShardSize), 20, 3, rec); err != nil {
		t.Fatal(err)
	}
	return rec.Events()
}

// minavgGoldenTrace: Fed-MinAvg with fixed non-IID class coverage, then
// two simulated rounds.
func minavgGoldenTrace(t *testing.T) []trace.Event {
	t.Helper()
	rec := NewTraceRecorder(0)
	tb := NewTestbed(2)
	arch := LeNet(1, 28, 28, 10)
	req, err := tb.Request(arch, 60000)
	if err != nil {
		t.Fatal(err)
	}
	for j, u := range req.Users {
		u.Classes = []int{j % 10, (j + 3) % 10, (j + 6) % 10}
	}
	req.K, req.Alpha, req.Beta = 10, 1000, 2
	req.Trace = rec
	asg, err := FedMinAvg.Schedule(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	devs, links := testbedDevices(tb)
	if _, err := fl.SimulateRoundsTraced(arch, devs, links, asg.Samples(ShardSize), 20, 2, rec); err != nil {
		t.Fatal(err)
	}
	return rec.Events()
}

// baselineGoldenTrace: the Equal baseline schedule plus a real two-round
// FedAvg run on two devices (client rounds, throttles, round summaries
// with accuracy).
func baselineGoldenTrace(t *testing.T) []trace.Event {
	t.Helper()
	rec := NewTraceRecorder(0)

	// Schedule stage: Equal over a hand-built request — no profiling
	// needed, the costs just shape the predicted makespan in the trace.
	users := make([]*sched.User, 2)
	for j := range users {
		rate := float64(j+1) / 100
		users[j] = &sched.User{
			Name:        fmt.Sprintf("user-%d", j),
			Cost:        func(n int) float64 { return rate * float64(n) },
			CommSeconds: 1,
		}
	}
	req := &sched.Request{TotalShards: 6, ShardSize: 100, Users: users, Trace: rec}
	if _, err := Equal.Schedule(req, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}

	// Run stage: tiny synchronous FedAvg with per-round evaluation. The
	// golden is recorded with Workers: -1 (sequential); the engine
	// contract makes any other worker count produce identical bytes.
	train, test := SMNIST(240, 3), SMNIST(120, 4)
	part := PartitionIID(train, 2, 5)
	devs := []*device.Device{device.New(device.Pixel2()), device.New(device.Nexus6P())}
	links := []network.Link{WiFi(), WiFi()}
	clients, err := fl.BuildClients(devs, links, part.Materialize(train))
	if err != nil {
		t.Fatal(err)
	}
	cfg := fl.Config{
		Arch: LeNetSmall(1, 16, 16, 10), Rounds: 2, BatchSize: 20,
		LR: 0.02, Momentum: 0.9, Seed: 1, EvalEvery: 1, Workers: -1,
		Trace: rec,
	}
	if _, err := fl.Run(cfg, clients, test); err != nil {
		t.Fatal(err)
	}
	return rec.Events()
}

// populationGoldenTrace: two population-scale rounds over a 1M-client
// fleet — uniform 16-client cohorts, the sparse Fed-LBAP solver, lazy
// device materialization. Pins the whole O(selected) pipeline: solver
// probes over the implicit cost matrix, the cohort's schedule, per-client
// rounds and round summaries. Recorded with Workers: -1 (sequential);
// the runner contract makes any other worker count produce identical
// bytes.
func populationGoldenTrace(t *testing.T) []trace.Event {
	t.Helper()
	rec := NewTraceRecorder(0)
	hist, err := SimulatePopulation(fl.PopulationConfig{
		Arch:        LeNetSmall(1, 16, 16, 10),
		Population:  NewDevicePopulation(1_000_000, 42),
		Sampler:     NewUniformSampler(1_000_000, 16, 42),
		Rounds:      2,
		TotalShards: 120,
		Workers:     -1,
		Trace:       rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Rounds) != 2 || hist.Rounds[0].Participants == 0 {
		t.Fatalf("implausible population history: %+v", hist.Rounds)
	}
	return rec.Events()
}

// faultsGoldenTrace: a four-client FedAvg run under an aggressive
// fixed-seed fault plan with a quorum cut — pins the fault pipeline's
// trace schema: KindFault events with their cost fields, the
// ClientFaulted/ClientLate flags on client_round events, and round
// summaries that exclude lost updates. Recorded with Workers: -1
// (sequential); the engine contract makes any other worker count
// produce identical bytes.
func faultsGoldenTrace(t *testing.T) []trace.Event {
	t.Helper()
	rec := NewTraceRecorder(0)
	train, test := SMNIST(240, 3), SMNIST(120, 4)
	part := PartitionIID(train, 4, 5)
	devs := []*device.Device{
		device.New(device.Pixel2()), device.New(device.Nexus6P()),
		device.New(device.Mate10()), device.New(device.Nexus6()),
	}
	links := []network.Link{WiFi(), WiFi(), WiFi(), WiFi()}
	clients, err := fl.BuildClients(devs, links, part.Materialize(train))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ParseFaultSpec("crash=0.25,flap=0.2,corrupt=0.15,degrade=0.3,slow=3", 99)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fl.Config{
		Arch: LeNetSmall(1, 16, 16, 10), Rounds: 3, BatchSize: 20,
		LR: 0.02, Momentum: 0.9, Seed: 1, EvalEvery: 1, Workers: -1,
		Faults: plan, Quorum: 3, MinParticipants: 1,
		Trace: rec,
	}
	if _, err := fl.Run(cfg, clients, test); err != nil {
		t.Fatal(err)
	}
	return rec.Events()
}

// TestGoldenTrace pins the full observability pipeline: fixed-seed runs
// of the Fed-LBAP, Fed-MinAvg, Equal-baseline, 1M-client population and
// fault-injection scenarios must keep producing the traces recorded
// under testdata/trace. Comparison is field-by-field under DefaultTolerances
// (not byte equality), so the goldens survive libm-level float drift
// across toolchains while still catching any schema, ordering, count or
// semantic change.
func TestGoldenTrace(t *testing.T) {
	cases := []struct {
		name  string
		trace func(*testing.T) []trace.Event
	}{
		{"lbap", lbapGoldenTrace},
		{"minavg", minavgGoldenTrace},
		{"baseline", baselineGoldenTrace},
		{"population", populationGoldenTrace},
		{"faults", faultsGoldenTrace},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := c.trace(t)
			if len(got) == 0 {
				t.Fatal("scenario produced no trace events")
			}
			path := filepath.Join("testdata", "trace", "golden_"+c.name+".jsonl")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := trace.WriteFileJSONL(path, got); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %d events to %s", len(got), path)
				return
			}
			golden, err := trace.ReadFileJSONL(path)
			if err != nil {
				t.Fatalf("%v (regenerate with `make trace-golden`)", err)
			}
			if err := CompareTraces(golden, got, trace.DefaultTolerances); err != nil {
				t.Errorf("trace diverged from golden: %v\n"+
					"(if the change is intentional: `make trace-golden`, then review the diff)", err)
			}
		})
	}
}
