// Command profiler runs the offline performance-profiling phase (paper
// §IV-B) for the device catalog and prints or saves the fitted profiles.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"fedsched/internal/device"
	"fedsched/internal/nn"
	"fedsched/internal/profile"
)

func main() {
	var (
		out     = flag.String("o", "", "write profiles as JSON to this file (default: print table)")
		inC     = flag.Int("channels", 1, "input channels of the target dataset")
		inHW    = flag.Int("size", 28, "input spatial size (height = width)")
		classes = flag.Int("classes", 10, "number of classes")
	)
	flag.Parse()

	suite := profile.Suite(*inC, *inHW, *inHW, *classes)
	catalog := device.Catalog()
	names := make([]string, 0, len(catalog))
	for name := range catalog {
		names = append(names, name)
	}
	sort.Strings(names)

	profiles := make(map[string]*profile.DeviceProfile, len(names))
	for _, name := range names {
		dev := device.New(catalog[name])
		p, err := profile.BuildOffline(dev, suite, profile.DefaultSizes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "profiling %s: %v\n", name, err)
			os.Exit(1)
		}
		profiles[name] = p
	}

	if *out != "" {
		blob, err := json.MarshalIndent(profiles, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, blob, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d profiles to %s\n", len(profiles), *out)
		return
	}

	lenet := nn.LeNet(*inC, *inHW, *inHW, *classes)
	vgg := nn.VGG6(*inC, *inHW, *inHW, *classes)
	fmt.Printf("%-8s  %-10s  %-6s  %-14s  %-14s\n", "device", "size", "R²", "LeNet pred[s]", "VGG6 pred[s]")
	for _, name := range names {
		p := profiles[name]
		for _, f := range p.Step1 {
			fmt.Printf("%-8s  %-10d  %-6.3f  %-14.1f  %-14.1f\n",
				name, f.DataSize, f.R2, p.Predict(lenet, f.DataSize), p.Predict(vgg, f.DataSize))
		}
	}
}
