// Command fedserve is the federated-learning daemon: a long-running HTTP
// server multiplexing many concurrent FL jobs (internal/serve) over the
// simulation engines. Jobs are submitted as JSON, stream their round
// traces to disk as they run, and synchronous jobs survive daemon
// restarts bit-identically via per-round resume snapshots.
//
//	fedserve -dir /var/lib/fedserve -addr 127.0.0.1:8080
//	fedserve -addr 127.0.0.1:0 -addr-file serve.addr   # ephemeral port
//
// SIGINT/SIGTERM stop accepting jobs, interrupt running ones at their
// next round boundary (leaving them resumable) and exit; a later
// fedserve over the same -dir finishes them. A hard kill loses nothing
// either — resume state is written atomically every round.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"fedsched/internal/serve"
)

func main() {
	var (
		dir        = flag.String("dir", "serve-state", "state directory (job configs, traces, resume snapshots)")
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening")
		queueCap   = flag.Int("queue-cap", 16, "admission queue capacity; beyond it submissions get 429")
		maxRunning = flag.Int("max-running", 2, "max concurrently running jobs")
		laneBudget = flag.Int("lane-budget", 0, "shared worker-lane budget across jobs (0 = tensor lanes + 1)")
		traceCap   = flag.Int("trace-cap", 0, "per-job trace ring capacity in events (0 = 65536)")
		quiet      = flag.Bool("quiet", false, "suppress per-job log lines")
	)
	flag.Parse()

	logf := log.New(os.Stderr, "", log.LstdFlags).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	s, err := serve.New(serve.Options{
		Dir: *dir, QueueCap: *queueCap, MaxRunning: *maxRunning,
		LaneBudget: *laneBudget, TraceCap: *traceCap, Logf: logf,
	})
	if err != nil {
		fatalf("%v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("%v", err)
	}
	if *addrFile != "" {
		// tmp+rename so a watcher never reads a half-written address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fatalf("%v", err)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			fatalf("%v", err)
		}
	}

	hs := &http.Server{Handler: s.Handler()}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		logf("fedserve: shutting down (interrupting jobs at their round boundaries)")
		s.Close()
		hs.Shutdown(context.Background())
	}()

	logf("fedserve: listening on %s (state %s)", ln.Addr(), *dir)
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "fedserve: "+format+"\n", args...)
	os.Exit(2)
}
