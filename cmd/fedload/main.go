// Command fedload drives a fedserve daemon: it submits a scenario of
// federated jobs, waits for them, and reports per-job and aggregated
// latency/throughput tables — a load generator for smoke tests and a
// calibration harness for serving baselines (in the flag-driven
// sweep-and-repetitions style of benchmark calibration harnesses).
//
//	fedload -addr-file serve.addr -mix sync=3 -reps 2 -out BENCH_serve.json
//	fedload -url http://127.0.0.1:8080 -jobs jobs.json -until-rounds 1
//	fedload -addr-file serve.addr -attach
//
// Modes:
//   - default: submit the scenario, wait for every job to finish, fail
//     unless all completed; with -reps the whole scenario repeats and
//     the aggregate keeps the best (minimum) per-metric values, the
//     same min-over-reps estimator the bench-regression gate uses.
//   - -until-rounds N: submit, then return as soon as every submitted
//     job has N completed rounds (daemon keeps running them) — the
//     hook for kill/restart smoke tests.
//   - -attach: submit nothing; wait for every job already known to the
//     daemon and fail unless all completed.
//
// -out writes machine-readable BENCH_serve.json with Benchmark* keys
// (p50/p99 job latency, ns-per-job throughput) that cmd/benchdiff gates
// exactly like the compute baselines, plus the hardware record.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"fedsched/internal/serve"
)

func main() {
	var (
		url      = flag.String("url", "", "daemon base URL, e.g. http://127.0.0.1:8080")
		addrFile = flag.String("addr-file", "", "read the daemon address from this file (written by fedserve -addr-file)")
		jobsFile = flag.String("jobs", "", "JSON file holding an array of job configs (overrides -mix)")
		mix      = flag.String("mix", "sync=3", "built-in scenario mix, e.g. 'sync=2,async=1,gossip=1'")

		clients = flag.Int("clients", 3, "clients per built-in job (testbed 0)")
		rounds  = flag.Int("rounds", 3, "rounds per built-in job")
		samples = flag.Int("samples", 300, "training samples per built-in job")
		testN   = flag.Int("test", 100, "test samples per built-in job")
		seed    = flag.Int64("seed", 42, "base seed; job i uses seed+i")

		reps        = flag.Int("reps", 1, "scenario repetitions (aggregate keeps minima)")
		arrival     = flag.Float64("arrival", 0, "seconds between submissions within a rep (0 = all at once)")
		untilRounds = flag.Int("until-rounds", 0, "return once every job has this many completed rounds, leaving them running")
		attach      = flag.Bool("attach", false, "wait for the daemon's existing jobs instead of submitting")
		timeout     = flag.Duration("timeout", 10*time.Minute, "per-rep wait deadline")
		out         = flag.String("out", "", "write machine-readable results (BENCH_serve.json) here")
	)
	flag.Parse()

	base, err := resolveURL(*url, *addrFile)
	if err != nil {
		fatalf("%v", err)
	}

	if *attach {
		ids, err := listJobIDs(base)
		if err != nil {
			fatalf("%v", err)
		}
		if len(ids) == 0 {
			fatalf("-attach: the daemon has no jobs")
		}
		stats, err := waitTerminal(base, ids, *timeout)
		if err != nil {
			fatalf("%v", err)
		}
		failed := 0
		for _, st := range stats {
			fmt.Printf("%-8s %-7s %-10s rounds %d/%d\n", st.ID, st.Engine, st.State, st.RoundsDone, st.Rounds)
			if st.State != serve.StateCompleted {
				failed++
			}
		}
		if failed > 0 {
			fatalf("%d of %d jobs did not complete", failed, len(stats))
		}
		fmt.Printf("all %d jobs completed\n", len(stats))
		return
	}

	jobs, err := scenario(*jobsFile, *mix, *clients, *rounds, *samples, *testN, *seed)
	if err != nil {
		fatalf("%v", err)
	}

	if *untilRounds > 0 {
		ids, _, err := submitAll(base, jobs, *arrival)
		if err != nil {
			fatalf("%v", err)
		}
		if err := waitRounds(base, ids, *untilRounds, *timeout); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%d jobs submitted, each past round %d: %s\n", len(ids), *untilRounds, strings.Join(ids, " "))
		return
	}

	var results []repResult
	for rep := 1; rep <= *reps; rep++ {
		r, err := runRep(base, jobs, *arrival, *timeout)
		if err != nil {
			fatalf("rep %d: %v", rep, err)
		}
		fmt.Printf("rep %d/%d:\n", rep, *reps)
		for _, j := range r.Jobs {
			fmt.Printf("  %-8s %-7s %-10s rounds %-4d latency %8.2fs\n",
				j.ID, j.Engine, j.State, j.Rounds, j.LatencyS)
		}
		fmt.Printf("  p50 %.2fs  p99 %.2fs  %.3f jobs/s over %.2fs\n",
			r.P50S, r.P99S, r.JobsPerSec, r.WallS)
		results = append(results, r)
		failed := 0
		for _, j := range r.Jobs {
			if j.State != serve.StateCompleted {
				failed++
			}
		}
		if failed > 0 {
			fatalf("rep %d: %d of %d jobs did not complete", rep, failed, len(r.Jobs))
		}
	}

	agg := aggregate(results)
	fmt.Printf("aggregate over %d reps (minima): p50 %.2fs  p99 %.2fs  best %.3f jobs/s\n",
		len(results), agg.P50S, agg.P99S, agg.JobsPerSec)

	if *out != "" {
		if err := writeBench(*out, *mix, *jobsFile, results, agg); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("results written to %s\n", *out)
	}
}

// resolveURL picks the daemon base URL from -url or -addr-file.
func resolveURL(url, addrFile string) (string, error) {
	if url != "" {
		return strings.TrimRight(url, "/"), nil
	}
	if addrFile == "" {
		return "", fmt.Errorf("one of -url or -addr-file is required")
	}
	raw, err := os.ReadFile(addrFile)
	if err != nil {
		return "", err
	}
	return "http://" + strings.TrimSpace(string(raw)), nil
}

// scenario builds the job list: either the -jobs file verbatim, or the
// -mix spec expanded over the base flags with per-job seeds.
func scenario(jobsFile, mix string, clients, rounds, samples, testN int, seed int64) ([]serve.JobConfig, error) {
	if jobsFile != "" {
		raw, err := os.ReadFile(jobsFile)
		if err != nil {
			return nil, err
		}
		var jobs []serve.JobConfig
		if err := json.Unmarshal(raw, &jobs); err != nil {
			return nil, fmt.Errorf("%s: %w", jobsFile, err)
		}
		if len(jobs) == 0 {
			return nil, fmt.Errorf("%s holds no jobs", jobsFile)
		}
		return jobs, nil
	}
	var jobs []serve.JobConfig
	for _, part := range strings.Split(mix, ",") {
		engine, countStr, ok := strings.Cut(strings.TrimSpace(part), "=")
		count := 1
		if ok {
			n, err := strconv.Atoi(countStr)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad mix entry %q", part)
			}
			count = n
		}
		switch engine {
		case "sync", "async", "gossip":
		default:
			return nil, fmt.Errorf("bad mix engine %q (want sync, async or gossip)", engine)
		}
		for i := 0; i < count; i++ {
			cfg := serve.JobConfig{
				Name: fmt.Sprintf("%s-%d", engine, i), Engine: engine,
				Clients: clients, Rounds: rounds, Samples: samples,
				TestSamples: testN, Seed: seed + int64(len(jobs)),
			}
			if engine == "async" {
				// The async engine counts updates, not rounds; keep
				// -rounds meaning "rounds' worth of work" across engines.
				cfg.MaxUpdates = rounds * clients
			}
			jobs = append(jobs, cfg)
		}
	}
	return jobs, nil
}

// jobResult is one job's observed outcome.
type jobResult struct {
	ID       string  `json:"id"`
	Engine   string  `json:"engine"`
	State    string  `json:"state"`
	Rounds   int     `json:"rounds_done"`
	LatencyS float64 `json:"latency_s"`
}

// repResult is one repetition's detailed and aggregated view.
type repResult struct {
	Jobs       []jobResult `json:"jobs"`
	P50S       float64     `json:"p50_s"`
	P99S       float64     `json:"p99_s"`
	WallS      float64     `json:"wall_s"`
	JobsPerSec float64     `json:"jobs_per_sec"`
}

// submitAll posts every job, returning ids and submission times.
func submitAll(base string, jobs []serve.JobConfig, arrival float64) ([]string, []time.Time, error) {
	ids := make([]string, len(jobs))
	at := make([]time.Time, len(jobs))
	for i, cfg := range jobs {
		if i > 0 && arrival > 0 {
			time.Sleep(time.Duration(arrival * float64(time.Second)))
		}
		body, err := json.Marshal(cfg)
		if err != nil {
			return nil, nil, err
		}
		at[i] = time.Now()
		st, err := postJob(base, body)
		if err != nil {
			return nil, nil, fmt.Errorf("submit job %d: %w", i, err)
		}
		ids[i] = st.ID
	}
	return ids, at, nil
}

// runRep submits the scenario once and measures per-job latency
// (submission to observed terminal state) and rep throughput.
func runRep(base string, jobs []serve.JobConfig, arrival float64, timeout time.Duration) (repResult, error) {
	start := time.Now()
	ids, at, err := submitAll(base, jobs, arrival)
	if err != nil {
		return repResult{}, err
	}

	pending := make(map[string]int, len(ids))
	for i, id := range ids {
		pending[id] = i
	}
	results := make([]jobResult, len(ids))
	deadline := time.Now().Add(timeout)
	for len(pending) > 0 {
		if time.Now().After(deadline) {
			return repResult{}, fmt.Errorf("timeout with %d jobs unfinished", len(pending))
		}
		for id, i := range pending {
			st, err := getStatus(base, id)
			if err != nil {
				return repResult{}, err
			}
			if st.State == serve.StateCompleted || st.State == serve.StateFailed || st.State == serve.StateCancelled {
				results[i] = jobResult{
					ID: id, Engine: st.Engine, State: st.State,
					Rounds: st.RoundsDone, LatencyS: time.Since(at[i]).Seconds(),
				}
				delete(pending, id)
			}
		}
		time.Sleep(20 * time.Millisecond)
	}

	wall := time.Since(start).Seconds()
	lat := make([]float64, len(results))
	for i, j := range results {
		lat[i] = j.LatencyS
	}
	sort.Float64s(lat)
	return repResult{
		Jobs: results,
		P50S: pctl(lat, 0.50), P99S: pctl(lat, 0.99),
		WallS: wall, JobsPerSec: float64(len(results)) / wall,
	}, nil
}

// waitRounds blocks until every job has done completed rounds (terminal
// states count as done — a failed job should surface immediately).
func waitRounds(base string, ids []string, rounds int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ready := 0
		for _, id := range ids {
			st, err := getStatus(base, id)
			if err != nil {
				return err
			}
			if st.State == serve.StateFailed || st.State == serve.StateCancelled {
				return fmt.Errorf("job %s ended %s: %s", id, st.State, st.Error)
			}
			if st.RoundsDone >= rounds || st.State == serve.StateCompleted {
				ready++
			}
		}
		if ready == len(ids) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timeout: %d of %d jobs past round %d", ready, len(ids), rounds)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitTerminal blocks until every listed job settles.
func waitTerminal(base string, ids []string, timeout time.Duration) ([]serve.JobStatus, error) {
	deadline := time.Now().Add(timeout)
	out := make([]serve.JobStatus, len(ids))
	for {
		done := 0
		for i, id := range ids {
			st, err := getStatus(base, id)
			if err != nil {
				return nil, err
			}
			out[i] = st
			if st.State == serve.StateCompleted || st.State == serve.StateFailed || st.State == serve.StateCancelled {
				done++
			}
		}
		if done == len(ids) {
			return out, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("timeout: %d of %d jobs unfinished", len(ids)-done, len(ids))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// pctl returns the q-quantile of sorted values (nearest-rank).
func pctl(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// aggregate keeps the best (minimum latency, maximum throughput) value
// per metric across reps — noise on a shared runner only slows things
// down, so minima estimate the machine's true cost (same reasoning as
// benchdiff's min-over-reps).
func aggregate(reps []repResult) repResult {
	agg := repResult{P50S: reps[0].P50S, P99S: reps[0].P99S, JobsPerSec: reps[0].JobsPerSec}
	for _, r := range reps[1:] {
		if r.P50S < agg.P50S {
			agg.P50S = r.P50S
		}
		if r.P99S < agg.P99S {
			agg.P99S = r.P99S
		}
		if r.JobsPerSec > agg.JobsPerSec {
			agg.JobsPerSec = r.JobsPerSec
		}
	}
	return agg
}

// benchFile is the machine-readable output: Benchmark* keys with
// ns_per_op for cmd/benchdiff, the hardware record its cross-machine
// warning keys on, and the per-rep detail for humans.
type benchFile struct {
	GeneratedBy string               `json:"generated_by"`
	Scenario    map[string]any       `json:"scenario"`
	Hardware    map[string]any       `json:"hardware"`
	Results     map[string]benchSpec `json:"results"`
	Reps        []repResult          `json:"reps"`
}

type benchSpec struct {
	NsPerOp float64 `json:"ns_per_op"`
	Note    string  `json:"note,omitempty"`
}

func writeBench(path, mix, jobsFile string, reps []repResult, agg repResult) error {
	scenarioDesc := map[string]any{"mix": mix, "reps": len(reps), "jobs_per_rep": len(reps[0].Jobs)}
	if jobsFile != "" {
		scenarioDesc["jobs_file"] = jobsFile
	}
	doc := benchFile{
		GeneratedBy: "fedload",
		Scenario:    scenarioDesc,
		Hardware: map[string]any{
			"nproc": runtime.NumCPU(), "cpu_model": cpuModel(), "gomaxprocs": runtime.GOMAXPROCS(0),
		},
		Results: map[string]benchSpec{
			"BenchmarkServeJobLatencyP50": {NsPerOp: agg.P50S * 1e9, Note: "median submit-to-completion job latency"},
			"BenchmarkServeJobLatencyP99": {NsPerOp: agg.P99S * 1e9, Note: "tail submit-to-completion job latency"},
			"BenchmarkServeJobsPerSec":    {NsPerOp: 1e9 / agg.JobsPerSec, Note: fmt.Sprintf("%.3f jobs/s as ns per job", agg.JobsPerSec)},
		},
		Reps: reps,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// cpuModel reads the CPU model string (Linux; empty elsewhere).
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}

func postJob(base string, body []byte) (serve.JobStatus, error) {
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return serve.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return serve.JobStatus{}, fmt.Errorf("HTTP %d: %s", resp.StatusCode, e.Error)
	}
	var st serve.JobStatus
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func getStatus(base, id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	return st, getJSON(base+"/jobs/"+id, &st)
}

func listJobIDs(base string) ([]string, error) {
	var all []serve.JobStatus
	if err := getJSON(base+"/jobs", &all); err != nil {
		return nil, err
	}
	ids := make([]string, len(all))
	for i, st := range all {
		ids[i] = st.ID
	}
	return ids, nil
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "fedload: "+format+"\n", args...)
	os.Exit(2)
}
