// Command tables regenerates every table and figure of the paper and
// writes a Markdown report (the body of EXPERIMENTS.md). Use -quick for a
// fast pass with reduced training workloads.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fedsched/internal/experiments"
)

func main() {
	var (
		out     = flag.String("o", "", "output file (default stdout)")
		quick   = flag.Bool("quick", false, "reduced training workloads")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "concurrent client training per round (0 = GOMAXPROCS)")
	)
	flag.Parse()

	var b strings.Builder
	fmt.Fprintf(&b, "# Regenerated evaluation (%s, quick=%v, seed=%d)\n",
		time.Now().Format("2006-01-02"), *quick, *seed)
	opts := experiments.Options{Quick: *quick, Seed: *seed, Workers: *workers}
	for _, id := range experiments.IDs() {
		d, _ := experiments.Lookup(id)
		start := time.Now()
		rep, err := d(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Fprintf(&b, "\n## %s — %s\n\n```\n", rep.ID, rep.Title)
		for _, t := range rep.Tables {
			b.WriteString(t.String())
			b.WriteByte('\n')
		}
		b.WriteString("```\n")
		for _, n := range rep.Notes {
			fmt.Fprintf(&b, "\n> %s\n", n)
		}
		fmt.Fprintf(os.Stderr, "%s done in %s\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *out == "" {
		fmt.Print(b.String())
		return
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "writing %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
