// Command fedtrain runs end-to-end federated training on a simulated
// mobile testbed: pick a testbed, dataset, model, scheduler and options,
// get per-round progress and a final model checkpoint.
//
// Examples:
//
//	fedtrain -testbed 2 -dataset smnist -rounds 10
//	fedtrain -testbed 1 -dataset scifar -classes-per-user 3 -alpha 1000 -beta 2
//	fedtrain -testbed 2 -secure -deadline 200 -checkpoint model.bin
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"fedsched"
	"fedsched/internal/data"
	"fedsched/internal/trace"
)

func main() {
	var (
		testbedID = flag.Int("testbed", 2, "paper testbed (1, 2 or 3)")
		dataset   = flag.String("dataset", "smnist", "dataset: smnist | scifar")
		scheduler = flag.String("scheduler", "fedlbap", "scheduler: fedlbap | fedminavg | prop | random | equal")
		rounds    = flag.Int("rounds", 10, "global rounds")
		samples   = flag.Int("samples", 3000, "training samples")
		testN     = flag.Int("test", 1000, "test samples")
		lr        = flag.Float64("lr", 0.02, "learning rate")
		momentum  = flag.Float64("momentum", 0.9, "SGD momentum")
		seed      = flag.Int64("seed", 1, "random seed")
		precision = flag.String("precision", "f64", "client training precision: f32 | f64 (server aggregation is always float64)")
		classes   = flag.Int("classes-per-user", 0, "non-IID: classes per user (0 = IID)")
		alpha     = flag.Float64("alpha", 1000, "Fed-MinAvg accuracy-cost weight")
		beta      = flag.Float64("beta", 2, "Fed-MinAvg unseen-class reward")
		secure    = flag.Bool("secure", false, "secure aggregation (pairwise masks)")
		deadline  = flag.Float64("deadline", 0, "per-round deadline in seconds (0 = wait for all)")
		workers   = flag.Int("workers", 0, "concurrent client training per round (0 = GOMAXPROCS, <0 = sequential); results are seed-identical for any value")
		ckpt      = flag.String("checkpoint", "", "write final model weights to this file")
		traceOut  = flag.String("trace", "", "write the run's round trace to this JSONL file")
		traceCSV  = flag.String("trace-csv", "", "write the run's round trace to this CSV file")
		traceSum  = flag.Bool("trace-summary", false, "print a per-round trace summary table to stderr")
		traceCap  = flag.Int("trace-cap", 0, "trace ring capacity in events (0 = default 65536)")
	)
	flag.Parse()

	prec, err := fedsched.ParsePrecision(*precision)
	if err != nil {
		fatalf("%v", err)
	}

	var rec *trace.Recorder
	if *traceOut != "" || *traceCSV != "" || *traceSum {
		rec = trace.New(*traceCap)
	}

	tb := fedsched.NewTestbed(*testbedID)
	users := len(tb.Profiles)

	var train, test *fedsched.Dataset
	var arch *fedsched.Arch
	switch *dataset {
	case "smnist":
		train, test = fedsched.SMNIST(*samples, *seed), fedsched.SMNIST(*testN, *seed)
		arch = fedsched.LeNetSmall(1, 16, 16, 10)
	case "scifar":
		train, test = fedsched.SCIFAR(*samples, *seed), fedsched.SCIFAR(*testN, *seed)
		arch = fedsched.LeNetSmall(3, 16, 16, 10)
	default:
		fatalf("unknown dataset %q", *dataset)
	}

	// Paper-scale scheduling decides the partition shape; we rescale onto
	// the reduced training set.
	paperArch := fedsched.LeNet(train.C, 28, 28, 10)
	req, err := tb.Request(paperArch, 60000)
	check(err)
	req.Trace = rec
	rng := rand.New(rand.NewSource(*seed))

	var classSets [][]int
	if *classes > 0 {
		classSets = make([][]int, users)
		for u := range classSets {
			perm := rng.Perm(10)
			classSets[u] = append([]int(nil), perm[:*classes]...)
		}
		for j, u := range req.Users {
			u.Classes = classSets[j]
		}
		req.K, req.Alpha, req.Beta = 10, *alpha, *beta
	}

	var s fedsched.Scheduler
	switch *scheduler {
	case "fedlbap":
		s = fedsched.FedLBAP
	case "fedminavg":
		s = fedsched.FedMinAvg
		if *classes == 0 {
			fatalf("fedminavg needs -classes-per-user > 0")
		}
	case "prop":
		s = fedsched.Proportional
	case "random":
		s = fedsched.RandomSched
	case "equal":
		s = fedsched.Equal
	default:
		fatalf("unknown scheduler %q", *scheduler)
	}
	asg, err := s.Schedule(req, rng)
	check(err)

	// Rescale the schedule onto the reduced training set.
	sizes := make([]int, users)
	assigned := 0
	for j, sh := range asg.Shards {
		sizes[j] = sh * train.Len() / req.TotalShards
		assigned += sizes[j]
	}
	for j := 0; assigned < train.Len(); j = (j + 1) % users {
		if sizes[j] > 0 || *classes == 0 {
			sizes[j]++
			assigned++
		}
	}
	var part fedsched.Partition
	if *classes > 0 {
		part = data.ByClassSets(train, classSets, sizes, rng)
	} else {
		part = data.IIDSizes(train, sizes, rng)
	}

	fmt.Printf("testbed %d (%d devices), %s on %s, scheduler %s\n",
		*testbedID, users, arch.Name, train.Name, s.Name())
	fmt.Printf("schedule (samples): %v  — predicted makespan %.0f s at paper scale\n",
		part.Sizes(), asg.PredictedMakespan)

	hist, err := tb.RunFederated(fedsched.RunConfig{
		Arch: arch, Rounds: *rounds, LR: *lr, Momentum: *momentum,
		Seed: *seed, Precision: prec, EvalEvery: 1, SecureAgg: *secure,
		DeadlineSeconds: *deadline, Workers: *workers, Trace: rec,
	}, train, part, test)
	check(err)

	for _, r := range hist.Rounds {
		dropped := 0
		for _, cr := range r.Clients {
			if cr.Dropped {
				dropped++
			}
		}
		fmt.Printf("round %2d  makespan %7.2f s  loss %6.4f  accuracy %.4f  dropped %d\n",
			r.Round, r.Makespan, r.TrainLoss, r.Accuracy, dropped)
	}
	fmt.Printf("\nfinal accuracy %.4f over %.0f simulated seconds (%.1f kJ total energy)\n",
		hist.FinalAccuracy, hist.TotalSeconds, hist.TotalEnergyJ/1000)
	if hist.Confusion != nil {
		worst, recall := hist.Confusion.WorstClass()
		fmt.Printf("macro recall %.4f; worst class %d at recall %.3f\n",
			hist.Confusion.MacroRecall(), worst, recall)
	}

	if *ckpt != "" {
		f, err := os.Create(*ckpt)
		check(err)
		check(hist.Model.SaveWeights(f))
		check(f.Close())
		fmt.Printf("checkpoint written to %s\n", *ckpt)
	}

	if rec != nil {
		events := rec.Events()
		if d := rec.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "trace: ring overflowed, %d oldest events dropped (raise -trace-cap)\n", d)
		}
		if *traceOut != "" {
			check(trace.WriteFileJSONL(*traceOut, events))
			fmt.Printf("trace: %d events written to %s\n", len(events), *traceOut)
		}
		if *traceCSV != "" {
			check(trace.WriteFileCSV(*traceCSV, events))
			fmt.Printf("trace: %d events written to %s\n", len(events), *traceCSV)
		}
		if *traceSum {
			check(trace.WriteSummary(os.Stderr, events))
		}
	}
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
