// Command fedtrain runs end-to-end federated training on a simulated
// mobile testbed: pick a testbed, dataset, model, scheduler and options,
// get per-round progress and a final model checkpoint.
//
// Examples:
//
//	fedtrain -testbed 2 -dataset smnist -rounds 10
//	fedtrain -testbed 1 -dataset scifar -classes-per-user 3 -alpha 1000 -beta 2
//	fedtrain -testbed 2 -secure -deadline 200 -checkpoint model.bin
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"fedsched"
	"fedsched/internal/data"
	"fedsched/internal/trace"
)

func main() {
	var (
		testbedID = flag.Int("testbed", 2, "paper testbed (1, 2 or 3)")
		dataset   = flag.String("dataset", "smnist", "dataset: smnist | scifar")
		scheduler = flag.String("scheduler", "fedlbap", "scheduler: fedlbap | fedminavg | prop | random | equal")
		rounds    = flag.Int("rounds", 10, "global rounds")
		samples   = flag.Int("samples", 3000, "training samples")
		testN     = flag.Int("test", 1000, "test samples")
		lr        = flag.Float64("lr", 0.02, "learning rate")
		momentum  = flag.Float64("momentum", 0.9, "SGD momentum")
		seed      = flag.Int64("seed", 1, "random seed")
		precision = flag.String("precision", "f64", "client training precision: f32 | f64 (server aggregation is always float64)")
		classes   = flag.Int("classes-per-user", 0, "non-IID: classes per user (0 = IID)")
		alpha     = flag.Float64("alpha", 1000, "Fed-MinAvg accuracy-cost weight")
		beta      = flag.Float64("beta", 2, "Fed-MinAvg unseen-class reward")
		secure    = flag.Bool("secure", false, "secure aggregation (pairwise masks)")
		deadline  = flag.Float64("deadline", 0, "per-round deadline in seconds (0 = wait for all)")
		workers   = flag.Int("workers", 0, "concurrent client training per round (0 = GOMAXPROCS, <0 = sequential); results are seed-identical for any value")
		ckpt      = flag.String("checkpoint", "", "write final model weights to this file")
		traceOut  = flag.String("trace", "", "write the run's round trace to this JSONL file")
		traceCSV  = flag.String("trace-csv", "", "write the run's round trace to this CSV file")
		traceSum  = flag.Bool("trace-summary", false, "print a per-round trace summary table to stderr")
		traceCap  = flag.Int("trace-cap", 0, "trace ring capacity in events (0 = default 65536)")

		faults    = flag.String("faults", "", "fault scenario, e.g. 'crash=0.1,battery=0.02,flap=0.05,corrupt=0.01,degrade=0.2,slow=4' (empty = no faults)")
		faultSeed = flag.Int64("fault-seed", 0, "seed for the fault plan (0 = derive from -seed)")
		quorum    = flag.Int("quorum", 0, "close each round after this many surviving updates, discarding later ones (0 = wait for all)")
		minPart   = flag.Int("min-participants", 0, "record rounds with fewer surviving updates as failed instead of aborting (0 = off)")
		ckptEvery = flag.Int("checkpoint-every", 0, "snapshot the resumable run state to -run-state every k rounds (0 = off)")
		runState  = flag.String("run-state", "", "file for -checkpoint-every snapshots")
		resume    = flag.String("resume", "", "resume a run from this -run-state snapshot (flags must match the original run)")
	)
	flag.Parse()

	prec, err := fedsched.ParsePrecision(*precision)
	if err != nil {
		fatalf("%v", err)
	}

	var rec *trace.Recorder
	if *traceOut != "" || *traceCSV != "" || *traceSum {
		rec = trace.New(*traceCap)
	}

	tb := fedsched.NewTestbed(*testbedID)
	users := len(tb.Profiles)

	var train, test *fedsched.Dataset
	var arch *fedsched.Arch
	switch *dataset {
	case "smnist":
		train, test = fedsched.SMNIST(*samples, *seed), fedsched.SMNIST(*testN, *seed)
		arch = fedsched.LeNetSmall(1, 16, 16, 10)
	case "scifar":
		train, test = fedsched.SCIFAR(*samples, *seed), fedsched.SCIFAR(*testN, *seed)
		arch = fedsched.LeNetSmall(3, 16, 16, 10)
	default:
		fatalf("unknown dataset %q", *dataset)
	}

	// Paper-scale scheduling decides the partition shape; we rescale onto
	// the reduced training set.
	paperArch := fedsched.LeNet(train.C, 28, 28, 10)
	req, err := tb.Request(paperArch, 60000)
	check(err)
	req.Trace = rec
	rng := rand.New(rand.NewSource(*seed))

	var classSets [][]int
	if *classes > 0 {
		classSets = make([][]int, users)
		for u := range classSets {
			perm := rng.Perm(10)
			classSets[u] = append([]int(nil), perm[:*classes]...)
		}
		for j, u := range req.Users {
			u.Classes = classSets[j]
		}
		req.K, req.Alpha, req.Beta = 10, *alpha, *beta
	}

	var s fedsched.Scheduler
	switch *scheduler {
	case "fedlbap":
		s = fedsched.FedLBAP
	case "fedminavg":
		s = fedsched.FedMinAvg
		if *classes == 0 {
			fatalf("fedminavg needs -classes-per-user > 0")
		}
	case "prop":
		s = fedsched.Proportional
	case "random":
		s = fedsched.RandomSched
	case "equal":
		s = fedsched.Equal
	default:
		fatalf("unknown scheduler %q", *scheduler)
	}
	asg, err := s.Schedule(req, rng)
	check(err)

	// Rescale the schedule onto the reduced training set.
	sizes := make([]int, users)
	assigned := 0
	for j, sh := range asg.Shards {
		sizes[j] = sh * train.Len() / req.TotalShards
		assigned += sizes[j]
	}
	for j := 0; assigned < train.Len(); j = (j + 1) % users {
		if sizes[j] > 0 || *classes == 0 {
			sizes[j]++
			assigned++
		}
	}
	var part fedsched.Partition
	if *classes > 0 {
		part = data.ByClassSets(train, classSets, sizes, rng)
	} else {
		part = data.IIDSizes(train, sizes, rng)
	}

	fmt.Printf("testbed %d (%d devices), %s on %s, scheduler %s\n",
		*testbedID, users, arch.Name, train.Name, s.Name())
	fmt.Printf("schedule (samples): %v  — predicted makespan %.0f s at paper scale\n",
		part.Sizes(), asg.PredictedMakespan)

	fseed := *faultSeed
	if fseed == 0 {
		fseed = *seed*0x9e3779b9 + 97
	}
	plan, err := fedsched.ParseFaultSpec(*faults, fseed)
	check(err)
	cfg := fedsched.RunConfig{
		Arch: arch, Rounds: *rounds, LR: *lr, Momentum: *momentum,
		Seed: *seed, Precision: prec, EvalEvery: 1, SecureAgg: *secure,
		DeadlineSeconds: *deadline, Workers: *workers, Trace: rec,
		Faults: plan, Quorum: *quorum, MinParticipants: *minPart,
	}
	if *ckptEvery > 0 {
		if *runState == "" {
			fatalf("-checkpoint-every needs -run-state")
		}
		cfg.CheckpointEvery = *ckptEvery
		cfg.CheckpointSink = func(ck *fedsched.RunCheckpoint) error {
			return writeRunState(*runState, ck)
		}
	}
	if *resume != "" {
		f, err := os.Open(*resume)
		check(err)
		ck, err := fedsched.LoadRunCheckpoint(f)
		check(err)
		check(f.Close())
		cfg.Resume = ck
		fmt.Printf("resuming from %s at round %d\n", *resume, ck.NextRound)
	}

	hist, err := tb.RunFederated(cfg, train, part, test)
	if err != nil && (hist == nil || len(hist.Rounds) == 0) {
		check(err)
	}

	showFaults := plan != nil || *quorum > 0
	for _, r := range hist.Rounds {
		dropped, faulted, late := 0, 0, 0
		for _, cr := range r.Clients {
			switch {
			case cr.Dropped:
				dropped++
			case cr.Fault != 0:
				faulted++
			case cr.Late:
				late++
			}
		}
		fmt.Printf("round %2d  makespan %7.2f s  loss %6.4f  accuracy %.4f  dropped %d",
			r.Round, r.Makespan, r.TrainLoss, r.Accuracy, dropped)
		if showFaults {
			fmt.Printf("  faulted %d  late %d", faulted, late)
			if r.Failed {
				fmt.Print("  FAILED")
			}
		}
		fmt.Println()
	}
	if err != nil {
		// The run died mid-way; the rounds above are what completed.
		fatalf("run aborted after %d rounds: %v", len(hist.Rounds), err)
	}
	fmt.Printf("\nfinal accuracy %.4f over %.0f simulated seconds (%.1f kJ total energy)\n",
		hist.FinalAccuracy, hist.TotalSeconds, hist.TotalEnergyJ/1000)
	if hist.Confusion != nil {
		worst, recall := hist.Confusion.WorstClass()
		fmt.Printf("macro recall %.4f; worst class %d at recall %.3f\n",
			hist.Confusion.MacroRecall(), worst, recall)
	}

	if *ckpt != "" {
		f, err := os.Create(*ckpt)
		check(err)
		check(hist.Model.SaveWeights(f))
		check(f.Close())
		fmt.Printf("checkpoint written to %s\n", *ckpt)
	}

	if rec != nil {
		events := rec.Events()
		if d := rec.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "trace: ring overflowed, %d oldest events dropped (raise -trace-cap)\n", d)
		}
		if *traceOut != "" {
			check(trace.WriteFileJSONL(*traceOut, events))
			fmt.Printf("trace: %d events written to %s\n", len(events), *traceOut)
		}
		if *traceCSV != "" {
			check(trace.WriteFileCSV(*traceCSV, events))
			fmt.Printf("trace: %d events written to %s\n", len(events), *traceCSV)
		}
		if *traceSum {
			check(trace.WriteSummary(os.Stderr, events))
		}
	}
}

// writeRunState atomically replaces path with the snapshot (write to a
// temp file in the same directory, then rename), so a crash mid-write
// never corrupts the previous good snapshot.
func writeRunState(path string, ck *fedsched.RunCheckpoint) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := ck.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
