package main

import (
	"math"
	"os"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: fedsched
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkGEMM_LeNet-4   	       5	  25000000 ns/op	 714.65 MB/s
BenchmarkGEMM_LeNet-4   	       5	  24000000 ns/op	 714.65 MB/s
BenchmarkGEMM_LeNet-4   	       5	  26000000 ns/op	 714.65 MB/s
BenchmarkRunSerial      	       3	 450000000 ns/op	207086138 B/op	   13919 allocs/op
BenchmarkRunSerial      	       3	 440000000 ns/op	207086138 B/op	   13919 allocs/op
PASS
ok  	fedsched	12.3s
`

func TestParseBenchOutput(t *testing.T) {
	got, err := parseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkGEMM_LeNet": 24000000,  // min over reps, -4 suffix stripped
		"BenchmarkRunSerial":  440000000, // no GOMAXPROCS suffix at procs=1
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

func TestParseBenchOutputEmpty(t *testing.T) {
	got, err := parseBenchOutput(strings.NewReader("PASS\nok fedsched 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expected no results, got %v", got)
	}
}

// sampleBaseline mirrors the shape of the repo's BENCH_*.json files:
// ns_per_op values nested under annotated "Benchmark…" keys or under
// plain "Benchmark…" keys below unrelated grouping keys; entries with
// no Benchmark ancestor (kernel pairs) are ignored; duplicates keep the
// minimum.
const sampleBaseline = `{
  "results_layer_triples_blocked": {
    "BenchmarkGEMM_LeNet (1280x500x40, fwd+dx+dw)": {"ns_per_op": 23884196, "mb_per_s": 714.65},
    "BenchmarkGEMM_VGG6 (980x720x96, fwd+dx+dw)": {"ns_per_op": 55773294}
  },
  "results_single_thread": {
    "VGG6Conv (980x720x96)": {"naive_ns_per_op": 41619032, "blocked_ns_per_op": 18731254}
  },
  "results": {
    "GOMAXPROCS=1 (native)": {
      "BenchmarkRunSerial": {"iterations": 3, "ns_per_op": 449440913}
    },
    "GOMAXPROCS=4 (forced, still 1 physical core)": {
      "BenchmarkRunSerial": {"iterations": 3, "ns_per_op": 536650850}
    }
  }
}`

func TestExtractBaselines(t *testing.T) {
	got := make(map[string]float64)
	if err := extractBaselines([]byte(sampleBaseline), got); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkGEMM_LeNet": 23884196,
		"BenchmarkGEMM_VGG6":  55773294,
		"BenchmarkRunSerial":  449440913, // min of the two GOMAXPROCS sections
	}
	if len(got) != len(want) {
		t.Fatalf("extracted %d baselines, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

// TestExtractBaselinesServeShape pins the fedload output contract: the
// flat "results" map it writes must survive the same walk that reads
// the hand-authored baselines, so `-bench-json artifacts/BENCH_serve.json`
// and `-baseline BENCH_serve.json` see identical names.
func TestExtractBaselinesServeShape(t *testing.T) {
	doc := []byte(`{
	  "generated_by": "fedload",
	  "hardware": {"nproc": 1, "cpu_model": "x", "gomaxprocs": 1},
	  "results": {
	    "BenchmarkServeJobLatencyP50": {"ns_per_op": 480000000, "note": "median"},
	    "BenchmarkServeJobLatencyP99": {"ns_per_op": 4200000000, "note": "tail"},
	    "BenchmarkServeJobsPerSec": {"ns_per_op": 1400000000, "note": "0.714 jobs/s as ns per job"}
	  },
	  "reps": [{"jobs": [{"id": "job-1", "latency_s": 4.2}], "p50_s": 4.2}]
	}`)
	got := make(map[string]float64)
	if err := extractBaselines(doc, got); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkServeJobLatencyP50": 480000000,
		"BenchmarkServeJobLatencyP99": 4200000000,
		"BenchmarkServeJobsPerSec":    1400000000,
	}
	if len(got) != len(want) {
		t.Fatalf("extracted %d baselines, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

func TestExtractBaselinesAgainstRepoFiles(t *testing.T) {
	got := make(map[string]float64)
	for _, path := range []string{"../../BENCH_gemm.json", "../../BENCH_fl_parallel.json"} {
		doc, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := extractBaselines(doc, got); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}
	for _, name := range []string{
		"BenchmarkGEMM_LeNet", "BenchmarkGEMM_VGG6",
		"BenchmarkRunSerial", "BenchmarkRunParallel",
	} {
		if got[name] <= 0 {
			t.Errorf("repo baselines missing %s (got %v)", name, got)
		}
	}
}

func TestCompareGate(t *testing.T) {
	baseline := map[string]float64{"A": 100, "B": 200, "C": 300}
	cases := []struct {
		name    string
		current map[string]float64
		geomean float64
		matched int
	}{
		{"identical", map[string]float64{"A": 100, "B": 200}, 1.0, 2},
		{"one20pctSlower", map[string]float64{"A": 120}, 1.2, 1},
		{"mixed", map[string]float64{"A": 200, "B": 100}, 1.0, 2}, // 2x slower × 2x faster
		{"unmatchedIgnored", map[string]float64{"A": 100, "Z": 999}, 1.0, 1},
		{"disjoint", map[string]float64{"Z": 999}, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rows, geomean := compare(c.current, baseline)
			if len(rows) != c.matched {
				t.Fatalf("matched %d rows, want %d", len(rows), c.matched)
			}
			if math.Abs(geomean-c.geomean) > 1e-12 {
				t.Fatalf("geomean = %v, want %v", geomean, c.geomean)
			}
		})
	}
}

func TestExtractHardware(t *testing.T) {
	doc := []byte(`{"hardware": {"nproc": 1, "cpu_model": "Intel(R) Xeon(R) Processor @ 2.10GHz", "gomaxprocs": 1}, "results": {}}`)
	hw, err := extractHardware(doc)
	if err != nil {
		t.Fatal(err)
	}
	if hw == nil || hw.Nproc != 1 || hw.Gomaxprocs != 1 || hw.CPUModel == "" {
		t.Fatalf("extracted %+v", hw)
	}
	hw, err = extractHardware([]byte(`{"results": {}}`))
	if err != nil || hw != nil {
		t.Fatalf("legacy baseline without hardware: got %+v, %v", hw, err)
	}
}

func TestHardwareWarning(t *testing.T) {
	hw := &hardware{Nproc: 1, CPUModel: "Xeon", Gomaxprocs: 1}
	if w := hardwareWarning("BENCH_x.json", hw, 1); w != "" {
		t.Fatalf("matching core count warned: %q", w)
	}
	if w := hardwareWarning("BENCH_x.json", hw, 8); w == "" {
		t.Fatal("core-count mismatch produced no warning")
	} else if !strings.Contains(w, "BENCH_x.json") || !strings.Contains(w, "8 cores") {
		t.Fatalf("warning lacks context: %q", w)
	}
	if w := hardwareWarning("BENCH_x.json", nil, 8); w == "" {
		t.Fatal("baseline without a hardware record produced no warning")
	} else if !strings.Contains(w, "no hardware record") || !strings.Contains(w, "BENCH_x.json") {
		t.Fatalf("missing-record warning lacks context: %q", w)
	}
	if w := hardwareWarning("BENCH_x.json", &hardware{}, 8); w == "" {
		t.Fatal("zero-value hardware record produced no warning")
	} else if !strings.Contains(w, "no hardware record") {
		t.Fatalf("zero-value record warning lacks context: %q", w)
	}
}

// TestRepoBaselinesCarryHardware pins the satellite invariant: every
// BENCH_*.json in the repo records the machine it was measured on.
func TestRepoBaselinesCarryHardware(t *testing.T) {
	for _, path := range []string{"../../BENCH_gemm.json", "../../BENCH_fl_parallel.json", "../../BENCH_sched.json", "../../BENCH_serve.json"} {
		doc, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		hw, err := extractHardware(doc)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if hw == nil || hw.Nproc == 0 || hw.CPUModel == "" || hw.Gomaxprocs == 0 {
			t.Errorf("%s: missing or incomplete hardware record: %+v", path, hw)
		}
	}
}

func TestCompareRowsSorted(t *testing.T) {
	baseline := map[string]float64{"B": 1, "A": 1, "C": 1}
	rows, _ := compare(map[string]float64{"C": 1, "A": 1, "B": 1}, baseline)
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Name >= rows[i].Name {
			t.Fatalf("rows not sorted by name: %v", rows)
		}
	}
}
