// Command benchdiff gates benchmark regressions in CI: it parses raw
// `go test -bench` output, takes the minimum ns/op over repetitions
// (-count=N), matches benchmark names against the recorded baselines in
// the repo's BENCH_*.json files, and fails when the geometric mean of
// the current/baseline ratios exceeds -max-slowdown.
//
//	go test -run '^$' -bench . -count=5 . | tee bench.txt
//	benchdiff -bench bench.txt -baseline BENCH_gemm.json -baseline BENCH_fl_parallel.json
//	benchdiff -bench-json artifacts/BENCH_serve.json -baseline BENCH_serve.json
//
// -bench-json reads the current run from a BENCH_*.json document (the
// shape fedload writes) instead of bench text, so serving latency and
// throughput gate under the same geomean rule as the compute kernels.
//
// Baselines are discovered by a recursive walk of the JSON: any object
// holding a numeric "ns_per_op" is attributed to the nearest enclosing
// key that starts with "Benchmark" (everything from the key's first
// space on — shape annotations like "(1280x500x40)" — is ignored).
// Duplicate names keep the smallest recorded value. The minimum, not
// the mean, is compared on both sides: noise on a shared CI runner only
// ever slows a run down, so min-of-reps is the best estimator of the
// true cost on that box.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkRunSerial-4   3   449440913 ns/op   207086138 B/op
//
// The -N suffix is GOMAXPROCS (omitted when 1) and is stripped so runs
// on different machines compare under the same name.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([0-9.eE+]+) ns/op`)

// parseBenchOutput reads raw `go test -bench` output and returns the
// minimum ns/op seen per benchmark name (over -count repetitions).
func parseBenchOutput(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil || ns <= 0 {
			return nil, fmt.Errorf("benchdiff: bad ns/op %q for %s", m[3], m[1])
		}
		if cur, ok := out[m[1]]; !ok || ns < cur {
			out[m[1]] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// extractBaselines walks a BENCH_*.json document and collects ns_per_op
// values keyed by benchmark name (see the package comment for the
// attribution rule). Results merge into dst, keeping minima.
func extractBaselines(doc []byte, dst map[string]float64) error {
	var root interface{}
	if err := json.Unmarshal(doc, &root); err != nil {
		return err
	}
	walkBaseline(root, "", dst)
	return nil
}

func walkBaseline(v interface{}, benchKey string, dst map[string]float64) {
	switch x := v.(type) {
	case map[string]interface{}:
		if ns, ok := x["ns_per_op"].(float64); ok && benchKey != "" && ns > 0 {
			name := strings.Fields(benchKey)[0]
			if cur, exists := dst[name]; !exists || ns < cur {
				dst[name] = ns
			}
		}
		for k, child := range x {
			key := benchKey
			if strings.HasPrefix(k, "Benchmark") {
				key = k
			}
			walkBaseline(child, key, dst)
		}
	case []interface{}:
		for _, child := range x {
			walkBaseline(child, benchKey, dst)
		}
	}
}

// hardware is the structured machine record in a BENCH_*.json baseline.
// Absolute ns/op baselines only transfer between machines of the same
// shape, so benchdiff surfaces a mismatch as a warning (never a gate —
// the geomean threshold still decides pass/fail).
type hardware struct {
	Nproc      int    `json:"nproc"`
	CPUModel   string `json:"cpu_model"`
	Gomaxprocs int    `json:"gomaxprocs"`
}

// extractHardware returns the baseline's top-level "hardware" object, or
// nil when the file predates the field.
func extractHardware(doc []byte) (*hardware, error) {
	var root struct {
		Hardware *hardware `json:"hardware"`
	}
	if err := json.Unmarshal(doc, &root); err != nil {
		return nil, err
	}
	return root.Hardware, nil
}

// hardwareWarning compares a baseline's recorded machine against this one
// and returns a human-readable warning, or "" when they match. A baseline
// with no hardware record at all also warns: silently accepting it hides
// that the comparison may be cross-machine, the exact condition the
// record exists to expose.
func hardwareWarning(path string, hw *hardware, nproc int) string {
	if hw == nil || hw.Nproc == 0 {
		return fmt.Sprintf("warning: %s carries no hardware record; the baseline may come from a different machine — re-record it to stamp the current hardware",
			path)
	}
	if hw.Nproc == nproc {
		return ""
	}
	return fmt.Sprintf("warning: %s was recorded on a %d-core machine (%s); this machine has %d cores — absolute ns/op ratios may not be meaningful, consider re-recording baselines",
		path, hw.Nproc, hw.CPUModel, nproc)
}

// row is one benchmark present in both the current run and a baseline.
type row struct {
	Name              string
	BaselineNs, CurNs float64
	Ratio             float64
}

// compare joins current results with baselines and returns the matched
// rows (sorted by name) plus the geometric mean of the ratios.
func compare(current, baseline map[string]float64) ([]row, float64) {
	var rows []row
	for name, cur := range current {
		base, ok := baseline[name]
		if !ok {
			continue
		}
		rows = append(rows, row{Name: name, BaselineNs: base, CurNs: cur, Ratio: cur / base})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	if len(rows) == 0 {
		return nil, 0
	}
	logSum := 0.0
	for _, r := range rows {
		logSum += math.Log(r.Ratio)
	}
	return rows, math.Exp(logSum / float64(len(rows)))
}

// stringList is a repeatable -baseline flag.
type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var (
		benchPath   = flag.String("bench", "-", "raw `go test -bench` output file ('-' = stdin)")
		benchJSON   = flag.String("bench-json", "", "read the current run from a BENCH_*.json document instead of -bench text")
		baselines   stringList
		maxSlowdown = flag.Float64("max-slowdown", 1.15, "fail when the geomean current/baseline ratio exceeds this")
	)
	flag.Var(&baselines, "baseline", "BENCH_*.json baseline file (repeatable)")
	flag.Parse()
	if len(baselines) == 0 {
		fatalf("benchdiff: at least one -baseline file is required")
	}

	current := make(map[string]float64)
	if *benchJSON != "" {
		doc, err := os.ReadFile(*benchJSON)
		if err != nil {
			fatalf("benchdiff: %v", err)
		}
		if err := extractBaselines(doc, current); err != nil {
			fatalf("benchdiff: %s: %v", *benchJSON, err)
		}
		if len(current) == 0 {
			fatalf("benchdiff: no Benchmark* entries with ns_per_op in %s", *benchJSON)
		}
	} else {
		in := io.Reader(os.Stdin)
		if *benchPath != "-" {
			f, err := os.Open(*benchPath)
			if err != nil {
				fatalf("benchdiff: %v", err)
			}
			defer f.Close()
			in = f
		}
		var err error
		current, err = parseBenchOutput(in)
		if err != nil {
			fatalf("%v", err)
		}
		if len(current) == 0 {
			fatalf("benchdiff: no benchmark results in %s", *benchPath)
		}
	}

	baseline := make(map[string]float64)
	for _, path := range baselines {
		doc, err := os.ReadFile(path)
		if err != nil {
			fatalf("benchdiff: %v", err)
		}
		if err := extractBaselines(doc, baseline); err != nil {
			fatalf("benchdiff: %s: %v", path, err)
		}
		if hw, err := extractHardware(doc); err == nil {
			if w := hardwareWarning(path, hw, runtime.NumCPU()); w != "" {
				fmt.Fprintln(os.Stderr, w)
			}
		}
	}

	rows, geomean := compare(current, baseline)
	if len(rows) == 0 {
		fatalf("benchdiff: no benchmark names overlap between the run (%d) and the baselines (%d) — wrong -bench filter or baseline files?",
			len(current), len(baseline))
	}

	fmt.Printf("%-28s %15s %15s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "ratio")
	for _, r := range rows {
		fmt.Printf("%-28s %15.0f %15.0f %8.3f\n", r.Name, r.BaselineNs, r.CurNs, r.Ratio)
	}
	fmt.Printf("geomean ratio %.3f (max allowed %.3f, %d benchmarks)\n", geomean, *maxSlowdown, len(rows))
	if geomean > *maxSlowdown {
		fmt.Printf("FAIL: geomean slowdown %.1f%% exceeds the %.1f%% budget\n",
			(geomean-1)*100, (*maxSlowdown-1)*100)
		os.Exit(1)
	}
	fmt.Println("OK")
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
