// Command fedlint runs the project's static-analysis suite (internal/lint)
// over the module: four passes that keep the determinism and
// allocation-free invariants from regressing silently.
//
//	fedlint              # lint ./...
//	fedlint ./internal/fl ./internal/tensor
//	fedlint -checks floateq,nondet
//	fedlint -list        # describe the passes and where they apply
//
// The nondet pass runs only over the determinism-critical packages
// (internal/fl, internal/sched, internal/sim, internal/tensor,
// internal/nn); hotalloc, floateq and syncmisuse run everywhere.
// fedlint exits 1 when any diagnostic is reported and 2 on usage or
// load errors, so `make lint` (and CI) fail on findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fedsched/internal/lint"
)

// nondetPackages are the module-relative packages whose results must be
// bit-identical across runs, workers and lanes — the scope of the nondet
// pass. Everything the FL engines touch numerically is here; the
// experiment drivers deliberately are not (they time wall clocks for
// their report tables).
var nondetPackages = map[string]bool{
	"internal/fl":     true,
	"internal/sched":  true,
	"internal/sim":    true,
	"internal/tensor": true,
	"internal/nn":     true,
}

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list the available checks and exit")
	includeTests := flag.Bool("tests", true, "also analyze in-package _test.go files")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fedlint [flags] [package-dir ...]   (default ./...)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			scope := "all packages"
			if a.Name == "nondet" {
				scope = "determinism-critical packages only"
			}
			fmt.Printf("%-12s %s [%s]\n", a.Name, a.Doc, scope)
		}
		return
	}

	analyzers := lint.All()
	if *checks != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*checks, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fatalf("unknown check %q (have: nondet, hotalloc, floateq, syncmisuse)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	modPath, modDir, err := lint.ModuleRoot(cwd)
	if err != nil {
		fatalf("%v", err)
	}

	paths, err := targetPaths(flag.Args(), modPath, modDir)
	if err != nil {
		fatalf("%v", err)
	}

	loader := lint.NewLoader(modPath, modDir)
	loader.IncludeTests = *includeTests
	findings := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fatalf("%v", err)
		}
		for _, a := range analyzers {
			if a.Name == "nondet" && !nondetPackages[relPath(path, modPath)] {
				continue
			}
			for _, d := range a.Run(pkg) {
				fmt.Println(relDiag(d.String(), modDir))
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "fedlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// targetPaths expands the command-line arguments ("./...", package
// directories) into module import paths.
func targetPaths(args []string, modPath, modDir string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var paths []string
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			all, err := lint.PackageDirs(modPath, modDir)
			if err != nil {
				return nil, err
			}
			paths = append(paths, all...)
			continue
		}
		abs, err := filepath.Abs(strings.TrimSuffix(arg, "/..."))
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(modDir, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("fedlint: %s is outside module %s", arg, modPath)
		}
		if strings.HasSuffix(arg, "/...") {
			sub, err := lint.PackageDirs(modPath+"/"+filepath.ToSlash(rel), abs)
			if err != nil {
				return nil, err
			}
			paths = append(paths, sub...)
			continue
		}
		if rel == "." {
			paths = append(paths, modPath)
		} else {
			paths = append(paths, modPath+"/"+filepath.ToSlash(rel))
		}
	}
	return paths, nil
}

// relPath strips the module prefix for the nondet scope lookup.
func relPath(path, modPath string) string {
	return strings.TrimPrefix(strings.TrimPrefix(path, modPath), "/")
}

// relDiag shortens absolute file names in a diagnostic to module-relative
// ones for readable, stable output.
func relDiag(s, modDir string) string {
	return strings.TrimPrefix(s, modDir+string(filepath.Separator))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fedlint: "+format+"\n", args...)
	os.Exit(2)
}
