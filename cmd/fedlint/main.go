// Command fedlint runs the project's static-analysis suite (internal/lint)
// over the module: per-package syntactic passes plus the interprocedural
// analyzers built on the repo-wide call graph, all keeping the
// determinism and allocation-free invariants from regressing silently.
//
//	fedlint                       # lint ./... against the baseline
//	fedlint ./internal/fl ./internal/tensor
//	fedlint -checks floateq,detflow
//	fedlint -list                 # describe the passes and where they apply
//	fedlint -json                 # machine-readable findings
//	fedlint -github               # GitHub Actions ::error annotations
//	fedlint -write-baseline       # accept all current findings
//
// The nondet pass runs only over the determinism-critical packages
// (internal/fl, internal/sched, internal/sim, internal/tensor,
// internal/nn); every other pass runs everywhere. The interprocedural
// passes (detflow, goroutinebound, floatorder, tracecomplete, hotalloc)
// see one call graph spanning all loaded packages, including external
// test packages, so a hot-path or determinism violation hiding behind a
// cross-package call is still found.
//
// Findings are gated by the accepted-findings ledger at
// .fedlint-baseline.json (module root, override with -baseline): fedlint
// exits 1 only on findings NOT in the baseline, and 2 on usage or load
// errors, so `make lint` (and the CI lint lane) fail exactly on new
// regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"fedsched/internal/lint"
)

func main() {
	var (
		checks        = flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
		list          = flag.Bool("list", false, "list the available checks and exit")
		includeTests  = flag.Bool("tests", true, "also analyze _test.go files (in-package and external)")
		jsonOut       = flag.Bool("json", false, "emit findings as JSON")
		githubOut     = flag.Bool("github", false, "emit findings as GitHub Actions ::error annotations")
		baselinePath  = flag.String("baseline", "", "accepted-findings ledger (default: <module root>/.fedlint-baseline.json)")
		writeBaseline = flag.Bool("write-baseline", false, "write all current findings to the baseline and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fedlint [flags] [package-dir ...]   (default ./...)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			scope := "all packages"
			if a.Name == "nondet" {
				scope = "determinism-critical packages only"
			}
			if a.Name == "hotalloc" {
				scope = "subsumed by the whole-program pass of the same name"
			}
			fmt.Printf("%-16s %s [%s]\n", a.Name, a.Doc, scope)
		}
		for _, a := range lint.AllProgram() {
			fmt.Printf("%-16s %s [whole program]\n", a.Name, a.Doc)
		}
		return
	}

	pkgAnalyzers, progAnalyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fatalf("%v", err)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	modPath, modDir, err := lint.ModuleRoot(cwd)
	if err != nil {
		fatalf("%v", err)
	}
	if *baselinePath == "" {
		*baselinePath = filepath.Join(modDir, ".fedlint-baseline.json")
	}

	paths, err := targetPaths(flag.Args(), modPath, modDir)
	if err != nil {
		fatalf("%v", err)
	}

	// Load every target (plus its external test package) through one
	// Loader so all packages share a FileSet and the call graph spans
	// the whole set.
	loader := lint.NewLoader(modPath, modDir)
	loader.IncludeTests = *includeTests
	var pkgs []*lint.Package
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fatalf("%v", err)
		}
		pkgs = append(pkgs, pkg)
		if *includeTests {
			ext, err := loader.LoadExternalTests(path)
			if err != nil {
				fatalf("%v", err)
			}
			if ext != nil {
				pkgs = append(pkgs, ext)
			}
		}
	}

	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range pkgAnalyzers {
			if a.Name == "nondet" && !lint.NonDetScope(pkg.Path, modPath) {
				continue
			}
			diags = append(diags, a.Run(pkg)...)
		}
	}
	if len(progAnalyzers) > 0 {
		pr := lint.BuildProgram(pkgs)
		for _, a := range progAnalyzers {
			diags = append(diags, a.Run(pr)...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})

	if *writeBaseline {
		data, err := lint.MarshalBaseline(diags, modDir)
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*baselinePath, data, 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "fedlint: wrote %d finding(s) to %s\n", len(diags), lint.RelFile(*baselinePath, modDir))
		return
	}

	baseline, err := lint.LoadBaseline(*baselinePath)
	if err != nil {
		fatalf("%v", err)
	}
	fresh, accepted := baseline.Filter(diags, modDir)

	switch {
	case *jsonOut:
		emitJSON(os.Stdout, fresh, accepted, modDir)
	case *githubOut:
		emitGitHub(os.Stdout, fresh, modDir)
	default:
		for _, d := range fresh {
			d.Pos.Filename = lint.RelFile(d.Pos.Filename, modDir)
			fmt.Println(d.String())
		}
	}
	if len(accepted) > 0 {
		fmt.Fprintf(os.Stderr, "fedlint: %d baselined finding(s) suppressed\n", len(accepted))
	}
	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "fedlint: %d new finding(s) — fix them, add a fedlint:allow with a justification, or re-run with -write-baseline\n", len(fresh))
		os.Exit(1)
	}
}

// selectAnalyzers resolves -checks into per-package and whole-program
// analyzer sets. By default every pass runs, except the per-package
// hotalloc pass: the whole-program analyzer of the same name subsumes it
// (same sites, plus cross-package reachability). Naming a check
// explicitly resolves whole-program first, so "hotalloc" means the
// interprocedural pass.
func selectAnalyzers(checks string) ([]*lint.Analyzer, []*lint.ProgramAnalyzer, error) {
	if checks == "" {
		var pkgAs []*lint.Analyzer
		for _, a := range lint.All() {
			if a.Name != "hotalloc" {
				pkgAs = append(pkgAs, a)
			}
		}
		return pkgAs, lint.AllProgram(), nil
	}
	var (
		pkgAs  []*lint.Analyzer
		progAs []*lint.ProgramAnalyzer
	)
	for _, name := range strings.Split(checks, ",") {
		name = strings.TrimSpace(name)
		if pa := lint.ProgramByName(name); pa != nil {
			progAs = append(progAs, pa)
			continue
		}
		if a := lint.ByName(name); a != nil {
			pkgAs = append(pkgAs, a)
			continue
		}
		return nil, nil, fmt.Errorf("unknown check %q (run fedlint -list)", name)
	}
	return pkgAs, progAs, nil
}

// jsonFinding is the -json wire form of one diagnostic.
type jsonFinding struct {
	Check     string `json:"check"`
	File      string `json:"file"` // module-relative, slash-separated
	Line      int    `json:"line"`
	Col       int    `json:"col"`
	Message   string `json:"message"`
	Baselined bool   `json:"baselined"`
}

// emitJSON writes all findings — fresh and baselined — as one JSON
// array, so tooling sees the full picture while the exit code still
// reflects only the fresh ones.
func emitJSON(w *os.File, fresh, accepted []lint.Diagnostic, modDir string) {
	out := make([]jsonFinding, 0, len(fresh)+len(accepted))
	add := func(ds []lint.Diagnostic, baselined bool) {
		for _, d := range ds {
			out = append(out, jsonFinding{
				Check: d.Check, File: lint.RelFile(d.Pos.Filename, modDir),
				Line: d.Pos.Line, Col: d.Pos.Column,
				Message: d.Message, Baselined: baselined,
			})
		}
	}
	add(fresh, false)
	add(accepted, true)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// emitGitHub writes fresh findings as GitHub Actions error annotations,
// which the Actions runner attaches to the diff view.
func emitGitHub(w *os.File, fresh []lint.Diagnostic, modDir string) {
	for _, d := range fresh {
		fmt.Fprintf(w, "::error file=%s,line=%d,col=%d::%s: %s\n",
			lint.RelFile(d.Pos.Filename, modDir), d.Pos.Line, d.Pos.Column,
			d.Check, githubEscape(d.Message))
	}
}

// githubEscape encodes the characters the Actions annotation format
// treats as delimiters.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// targetPaths expands the command-line arguments ("./...", package
// directories) into module import paths.
func targetPaths(args []string, modPath, modDir string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var paths []string
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			all, err := lint.PackageDirs(modPath, modDir)
			if err != nil {
				return nil, err
			}
			paths = append(paths, all...)
			continue
		}
		abs, err := filepath.Abs(strings.TrimSuffix(arg, "/..."))
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(modDir, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("fedlint: %s is outside module %s", arg, modPath)
		}
		if strings.HasSuffix(arg, "/...") {
			sub, err := lint.PackageDirs(modPath+"/"+filepath.ToSlash(rel), abs)
			if err != nil {
				return nil, err
			}
			paths = append(paths, sub...)
			continue
		}
		if rel == "." {
			paths = append(paths, modPath)
		} else {
			paths = append(paths, modPath+"/"+filepath.ToSlash(rel))
		}
	}
	return paths, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fedlint: "+format+"\n", args...)
	os.Exit(2)
}
