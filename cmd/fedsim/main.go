// Command fedsim regenerates the paper's tables and figures from the
// simulation substrate. Run `fedsim -list` to see experiment ids, `fedsim
// -exp fig5` for one experiment, or `fedsim -exp all` for everything.
//
// Population mode (`fedsim -population 1000000 -cohort 64`) simulates
// scheduling rounds over a synthetic client fleet far beyond testbed
// scale: a sampler draws each round's cohort, the sparsified Fed-LBAP
// solver partitions the round's shards, and only the selected clients
// are ever materialized — memory stays O(cohort) however large the
// fleet.
//
// The round trace of a run (schedule assignments, solver probes,
// per-client compute/comm/energy/throttle events, round summaries) can be
// captured with `-trace out.jsonl` / `-trace-csv out.csv` and summarized
// with `-trace-summary`; at a fixed seed the trace is byte-identical for
// any `-workers` value.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"fedsched/internal/device"
	"fedsched/internal/experiments"
	"fedsched/internal/fault"
	"fedsched/internal/fl"
	"fedsched/internal/nn"
	"fedsched/internal/sample"
	"fedsched/internal/trace"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id (fig1..fig7, tab2..tab5) or 'all'")
		quick     = flag.Bool("quick", false, "reduced workloads for a fast pass")
		seed      = flag.Int64("seed", 1, "random seed")
		list      = flag.Bool("list", false, "list experiment ids")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		workers   = flag.Int("workers", 0, "concurrent client training per round (0 = GOMAXPROCS, <0 = sequential); results are seed-identical for any value")
		precision = flag.String("precision", "f64", "client training precision for accuracy experiments: f32 | f64")
		traceOut  = flag.String("trace", "", "write the run's round trace to this JSONL file")
		traceCSV  = flag.String("trace-csv", "", "write the run's round trace to this CSV file")
		traceSum  = flag.Bool("trace-summary", false, "print a per-round trace summary table to stderr")
		traceCap  = flag.Int("trace-cap", 0, "trace ring capacity in events (0 = default 65536; oldest events are dropped beyond it)")

		population  = flag.Int("population", 0, "population mode: simulate scheduling rounds over this many synthetic clients (0 = off)")
		cohort      = flag.Int("cohort", 64, "population mode: clients sampled per round")
		popRounds   = flag.Int("pop-rounds", 5, "population mode: rounds to simulate")
		popShards   = flag.Int("pop-shards", 600, "population mode: data shards scheduled per round")
		samplerName = flag.String("sampler", "uniform", "population mode: cohort sampler, 'uniform' or 'window' (availability windows)")
		windowHours = flag.Float64("window-hours", 6, "population mode: availability window length for -sampler window")
		battery     = flag.Float64("battery-budget", 0, "population mode: per-round battery budget fraction capping each client's shards (0 = uncapped)")

		faults     = flag.String("faults", "", "fault scenario, e.g. 'crash=0.1,battery=0.02,flap=0.05,corrupt=0.01,degrade=0.2,slow=4' (empty = no faults)")
		faultSeed  = flag.Int64("fault-seed", 0, "seed for the fault plan (0 = derive from -seed)")
		overselect = flag.Float64("overselect", 0, "population mode: over-selection margin — grow the cohort to ceil(cohort*(1+margin)) and set the quorum to the original size")
		quorum     = flag.Int("quorum", 0, "population mode: close each round after this many surviving clients (0 = wait for all; implied by -overselect)")
		minPart    = flag.Int("min-participants", 0, "population mode: mark rounds with fewer surviving participants as failed (0 = off)")
		cooldown   = flag.Int("cooldown", 0, "population mode: skip failed clients for this many rounds, doubling per repeat failure (0 = off)")
	)
	flag.Parse()
	if *population > 0 {
		var rec *trace.Recorder
		if *traceOut != "" || *traceCSV != "" || *traceSum {
			rec = trace.New(*traceCap)
		}
		err := runPopulation(populationOpts{
			n: *population, cohort: *cohort, rounds: *popRounds, shards: *popShards,
			sampler: *samplerName, windowHours: *windowHours, battery: *battery,
			seed: *seed, workers: *workers, rec: rec,
			faults: *faults, faultSeed: *faultSeed, overselect: *overselect,
			quorum: *quorum, minParticipants: *minPart, cooldown: *cooldown,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "population: %v\n", err)
			os.Exit(1)
		}
		if err := writeTrace(rec, *traceOut, *traceCSV, *traceSum); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %s\n", id)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}
	prec, err := nn.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	opts := experiments.Options{Quick: *quick, Seed: *seed, Workers: *workers, Precision: prec}
	if *traceOut != "" || *traceCSV != "" || *traceSum {
		opts.Trace = trace.New(*traceCap)
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		d, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		rep, err := d(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			for _, t := range rep.Tables {
				fmt.Printf("# %s — %s\n%s\n", rep.ID, t.Title, t.CSV())
			}
		} else {
			fmt.Println(rep.String())
		}
	}
	if err := writeTrace(opts.Trace, *traceOut, *traceCSV, *traceSum); err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		os.Exit(1)
	}
}

type populationOpts struct {
	n, cohort, rounds, shards int
	sampler                   string
	windowHours               float64
	battery                   float64
	seed                      int64
	workers                   int
	rec                       *trace.Recorder

	faults          string
	faultSeed       int64
	overselect      float64
	quorum          int
	minParticipants int
	cooldown        int
}

// runPopulation executes population mode and prints one line per round.
func runPopulation(o populationOpts) error {
	pop := device.NewPopulation(o.n, o.seed)
	fseed := o.faultSeed
	if fseed == 0 {
		fseed = o.seed*0x9e3779b9 + 97
	}
	plan, err := fault.ParseSpec(o.faults, fseed)
	if err != nil {
		return err
	}
	// Over-selection: draw a larger cohort and keep only the first
	// `cohort` survivors, so faults and stragglers eat the margin.
	drawn, q := o.cohort, o.quorum
	if o.overselect > 0 {
		drawn = int(math.Ceil(float64(o.cohort) * (1 + o.overselect)))
		if q <= 0 {
			q = o.cohort
		}
	}
	var s sample.Sampler
	switch o.sampler {
	case "uniform":
		s = sample.NewUniform(o.n, drawn, o.seed)
	case "window":
		a := sample.NewAvailability(o.n, drawn, o.seed)
		a.WindowHours = o.windowHours
		s = a
	default:
		return fmt.Errorf("unknown sampler %q (use 'uniform' or 'window')", o.sampler)
	}
	if o.cooldown > 0 {
		s = sample.NewCooldown(s, o.cooldown)
	}
	cfg := fl.PopulationConfig{
		Arch:            nn.LeNetSmall(1, 16, 16, 10),
		Population:      pop,
		Sampler:         s,
		Rounds:          o.rounds,
		TotalShards:     o.shards,
		Workers:         o.workers,
		BatteryBudget:   o.battery,
		Faults:          plan,
		Quorum:          q,
		MinParticipants: o.minParticipants,
		Trace:           o.rec,
	}
	hist, err := fl.SimulatePopulationRounds(cfg)
	// A mid-run error still returns the completed rounds; print them
	// before reporting the failure.
	if err == nil || (hist != nil && len(hist.Rounds) > 0) {
		fmt.Printf("population %d, cohort %d (%s), %d shards/round, %d rounds",
			o.n, drawn, s.Name(), o.shards, o.rounds)
		if plan != nil {
			fmt.Printf(", faults %s (seed %d)", plan, fseed)
		}
		if q > 0 {
			fmt.Printf(", quorum %d", q)
		}
		fmt.Println()
		fmt.Printf("%5s %8s %12s %10s %10s %10s %9s %9s %7s %5s %6s\n",
			"round", "selected", "participants", "samples", "pred(s)", "actual(s)", "energy(J)", "straggler", "faults", "late", "status")
		for _, r := range hist.Rounds {
			status := "ok"
			if r.Failed {
				status = "FAILED"
			}
			fmt.Printf("%5d %8d %12d %10d %10.2f %10.2f %9.1f %9d %7d %5d %6s\n",
				r.Round, r.Selected, r.Participants, r.Samples, r.PredictedS, r.MakespanS, r.EnergyJ, r.Straggler,
				r.Faulted, r.Late, status)
		}
		fmt.Printf("total: %.2f virtual seconds, %.1f J across cohorts\n", hist.TotalSeconds, hist.TotalEnergyJ)
	}
	return err
}

// writeTrace flushes the collected trace to the requested outputs.
func writeTrace(rec *trace.Recorder, jsonlPath, csvPath string, summary bool) error {
	if rec == nil {
		return nil
	}
	events := rec.Events()
	if d := rec.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "trace: ring overflowed, %d oldest events dropped (raise -trace-cap)\n", d)
	}
	if jsonlPath != "" {
		if err := trace.WriteFileJSONL(jsonlPath, events); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: %d events written to %s\n", len(events), jsonlPath)
	}
	if csvPath != "" {
		if err := trace.WriteFileCSV(csvPath, events); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: %d events written to %s\n", len(events), csvPath)
	}
	if summary {
		if err := trace.WriteSummary(os.Stderr, events); err != nil {
			return err
		}
	}
	return nil
}
