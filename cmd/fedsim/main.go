// Command fedsim regenerates the paper's tables and figures from the
// simulation substrate. Run `fedsim -list` to see experiment ids, `fedsim
// -exp fig5` for one experiment, or `fedsim -exp all` for everything.
//
// The round trace of a run (schedule assignments, solver probes,
// per-client compute/comm/energy/throttle events, round summaries) can be
// captured with `-trace out.jsonl` / `-trace-csv out.csv` and summarized
// with `-trace-summary`; at a fixed seed the trace is byte-identical for
// any `-workers` value.
package main

import (
	"flag"
	"fmt"
	"os"

	"fedsched/internal/experiments"
	"fedsched/internal/trace"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (fig1..fig7, tab2..tab5) or 'all'")
		quick    = flag.Bool("quick", false, "reduced workloads for a fast pass")
		seed     = flag.Int64("seed", 1, "random seed")
		list     = flag.Bool("list", false, "list experiment ids")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		workers  = flag.Int("workers", 0, "concurrent client training per round (0 = GOMAXPROCS, <0 = sequential); results are seed-identical for any value")
		traceOut = flag.String("trace", "", "write the run's round trace to this JSONL file")
		traceCSV = flag.String("trace-csv", "", "write the run's round trace to this CSV file")
		traceSum = flag.Bool("trace-summary", false, "print a per-round trace summary table to stderr")
		traceCap = flag.Int("trace-cap", 0, "trace ring capacity in events (0 = default 65536; oldest events are dropped beyond it)")
	)
	flag.Parse()
	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %s\n", id)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}
	opts := experiments.Options{Quick: *quick, Seed: *seed, Workers: *workers}
	if *traceOut != "" || *traceCSV != "" || *traceSum {
		opts.Trace = trace.New(*traceCap)
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		d, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		rep, err := d(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			for _, t := range rep.Tables {
				fmt.Printf("# %s — %s\n%s\n", rep.ID, t.Title, t.CSV())
			}
		} else {
			fmt.Println(rep.String())
		}
	}
	if err := writeTrace(opts.Trace, *traceOut, *traceCSV, *traceSum); err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		os.Exit(1)
	}
}

// writeTrace flushes the collected trace to the requested outputs.
func writeTrace(rec *trace.Recorder, jsonlPath, csvPath string, summary bool) error {
	if rec == nil {
		return nil
	}
	events := rec.Events()
	if d := rec.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "trace: ring overflowed, %d oldest events dropped (raise -trace-cap)\n", d)
	}
	if jsonlPath != "" {
		if err := trace.WriteFileJSONL(jsonlPath, events); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: %d events written to %s\n", len(events), jsonlPath)
	}
	if csvPath != "" {
		if err := trace.WriteFileCSV(csvPath, events); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: %d events written to %s\n", len(events), csvPath)
	}
	if summary {
		if err := trace.WriteSummary(os.Stderr, events); err != nil {
			return err
		}
	}
	return nil
}
