// Command fedsim regenerates the paper's tables and figures from the
// simulation substrate. Run `fedsim -list` to see experiment ids, `fedsim
// -exp fig5` for one experiment, or `fedsim -exp all` for everything.
package main

import (
	"flag"
	"fmt"
	"os"

	"fedsched/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (fig1..fig7, tab2..tab5) or 'all'")
		quick   = flag.Bool("quick", false, "reduced workloads for a fast pass")
		seed    = flag.Int64("seed", 1, "random seed")
		list    = flag.Bool("list", false, "list experiment ids")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		workers = flag.Int("workers", 0, "concurrent client training per round (0 = GOMAXPROCS, <0 = sequential); results are seed-identical for any value")
	)
	flag.Parse()
	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %s\n", id)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}
	opts := experiments.Options{Quick: *quick, Seed: *seed, Workers: *workers}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		d, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		rep, err := d(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			for _, t := range rep.Tables {
				fmt.Printf("# %s — %s\n%s\n", rep.ID, t.Title, t.CSV())
			}
		} else {
			fmt.Println(rep.String())
		}
	}
}
