// Package fedsched is the public API of the fedsched library: a full
// reproduction of "Optimize Scheduling of Federated Learning on
// Battery-powered Mobile Devices" (Wang, Wei, Zhou — IPDPS 2020).
//
// The library contains, from the bottom up:
//
//   - a CPU deep-learning training stack (tensors, conv/dense layers, SGD)
//     with the paper's LeNet and VGG6 architectures;
//   - deterministic synthetic datasets standing in for MNIST and CIFAR10,
//     plus every data-partitioning scheme in the paper's evaluation;
//   - a mobile-device simulator (big.LITTLE clusters, interactive-governor
//     DVFS, RC thermal model with throttling and the Nexus 6P's big-core
//     shutdown), calibrated against the paper's Table II;
//   - WiFi/LTE link models;
//   - the two-step performance profiler (Fig 4);
//   - the scheduling algorithms: Fed-LBAP (Algorithm 1), Fed-MinAvg
//     (Algorithm 2), the Proportional/Random/Equal baselines, an exact
//     brute-force oracle, plus classic LBAP and fragmentable bin packing
//     reference solvers;
//   - a synchronous FedAvg federated-learning engine over the simulated
//     testbed;
//   - experiment drivers regenerating every table and figure of the paper.
//
// Quick start: see examples/quickstart, or:
//
//	tb := fedsched.NewTestbed(2)                 // the paper's 6-device testbed
//	arch := fedsched.LeNet(1, 28, 28, 10)        // ~205K-parameter LeNet
//	asg, _ := tb.ScheduleIID(arch, 60000)        // Fed-LBAP schedule for 60K samples
//	spans, _ := tb.SimulateRounds(arch, asg, 5)  // simulated round makespans
package fedsched

import (
	"fmt"
	"math/rand"

	"fedsched/internal/data"
	"fedsched/internal/device"
	"fedsched/internal/experiments"
	"fedsched/internal/fault"
	"fedsched/internal/fl"
	"fedsched/internal/network"
	"fedsched/internal/nn"
	"fedsched/internal/privacy"
	"fedsched/internal/profile"
	"fedsched/internal/sample"
	"fedsched/internal/sched"
	"fedsched/internal/secagg"
	"fedsched/internal/trace"
)

// Re-exported core types. The aliases make the internal packages' fully
// documented types available to library users without duplicating them.
type (
	// Arch is an analytic network architecture (buildable into a
	// trainable Network).
	Arch = nn.Arch
	// Network is a trainable feed-forward network.
	Network = nn.Network
	// Dataset is a labelled image dataset.
	Dataset = data.Dataset
	// Partition assigns dataset sample indices to users.
	Partition = data.Partition
	// Device is a stateful simulated phone.
	Device = device.Device
	// DeviceProfile is a fitted two-step performance profile.
	DeviceProfile = profile.DeviceProfile
	// Link is a wireless link model.
	Link = network.Link
	// Scheduler produces workload assignments.
	Scheduler = sched.Scheduler
	// Request is a scheduling problem.
	Request = sched.Request
	// Assignment is a computed schedule.
	Assignment = sched.Assignment
	// User is one scheduling participant.
	User = sched.User
	// Client is one federated participant.
	Client = fl.Client
	// RunConfig drives a federated run.
	RunConfig = fl.Config
	// Precision selects the client training element type (F64 or F32);
	// server-side aggregation stays float64 either way.
	Precision = nn.Precision
	// History is the result of a federated run.
	History = fl.History
	// AsyncConfig drives asynchronous (staleness-weighted) aggregation.
	AsyncConfig = fl.AsyncConfig
	// AsyncHistory summarizes an asynchronous run.
	AsyncHistory = fl.AsyncHistory
	// GossipConfig drives decentralized (serverless) training.
	GossipConfig = fl.GossipConfig
	// GossipHistory summarizes a decentralized run.
	GossipHistory = fl.GossipHistory
	// Topology selects the gossip communication pattern.
	Topology = fl.Topology
	// OnlineProfile refines cost predictions from live round measurements.
	OnlineProfile = profile.OnlineProfile
	// PrivacyReporter randomizes class-coverage reports (local DP).
	PrivacyReporter = privacy.Reporter
	// SecureGroup is a pairwise-mask secure-aggregation cohort.
	SecureGroup = secagg.Group
	// AlphaSearchResult is one candidate from TuneAlpha.
	AlphaSearchResult = sched.AlphaSearchResult
	// TraceRecorder is a deterministic round-trace event ring; point
	// RunConfig.Trace / Request.Trace at one to observe a run.
	TraceRecorder = trace.Recorder
	// TraceEvent is one round-trace record.
	TraceEvent = trace.Event
	// Sampler draws per-round client cohorts (see NewUniformSampler,
	// NewAvailabilitySampler); RunConfig.Sampler and PopulationConfig
	// accept one.
	Sampler = sample.Sampler
	// DevicePopulation describes a synthetic client fleet by construction
	// — clients materialize lazily, so fleets of millions cost O(1)
	// memory until selected.
	DevicePopulation = device.Population
	// PopulationConfig drives a population-scale scheduling simulation.
	PopulationConfig = fl.PopulationConfig
	// PopulationRunner executes population rounds with O(selected) state.
	PopulationRunner = fl.PopulationRunner
	// PopulationRound summarizes one population round.
	PopulationRound = fl.PopulationRound
	// PopulationHistory is the result of SimulatePopulation.
	PopulationHistory = fl.PopulationHistory
	// FaultPlan is a seeded deterministic fault scenario; point
	// RunConfig.Faults / PopulationConfig.Faults at one.
	FaultPlan = fault.Plan
	// FaultKind discriminates injected fault types (crash, battery
	// death, link flap, corrupt update).
	FaultKind = fault.Kind
	// RunCheckpoint is a resumable snapshot of a synchronous run (see
	// RunConfig.CheckpointEvery / CheckpointSink / Resume).
	RunCheckpoint = fl.Checkpoint
)

// Gossip topologies.
const (
	Ring        = fl.Ring
	RandomPairs = fl.RandomPairs
)

// Client training precisions.
const (
	// F64 trains clients in float64 (the default).
	F64 = nn.F64
	// F32 trains clients in float32 (half the memory traffic, SIMD f32
	// kernels); aggregation still accumulates in float64.
	F32 = nn.F32
)

// ParsePrecision maps flag spellings (f32/float32/fp32, f64/…, "") to a
// Precision.
var ParsePrecision = nn.ParsePrecision

// Federated run modes and substrate constructors.
var (
	// RunAsync executes staleness-weighted asynchronous FL.
	RunAsync = fl.RunAsync
	// RunGossip executes decentralized pairwise-averaging FL.
	RunGossip = fl.RunGossip
	// NewOnlineProfile wraps an (optional) offline profile with live
	// observation refitting.
	NewOnlineProfile = profile.NewOnline
	// NewPrivacyReporter builds an ε-LDP class-coverage reporter.
	NewPrivacyReporter = privacy.NewReporter
	// NewSecureGroup builds a secure-aggregation cohort.
	NewSecureGroup = secagg.NewGroup
	// TuneAlpha sweeps Fed-MinAvg's α over a grid (the paper's [100,5000]
	// search) and returns the objective-minimizing schedule.
	TuneAlpha = sched.TuneAlpha
	// DefaultAlphaGrid is the paper's α search interval, sampled
	// geometrically.
	DefaultAlphaGrid = sched.DefaultAlphaGrid
	// RandomClassSets draws random per-user class subsets (Fig 7's
	// distribution generator).
	RandomClassSets = sched.RandomClassSets
	// NewTraceRecorder builds a round-trace ring (capacity ≤ 0 = 65536).
	NewTraceRecorder = trace.New
	// WriteTraceJSONL / WriteTraceCSV export a trace deterministically;
	// CompareTraces checks two traces field-by-field under tolerances.
	WriteTraceJSONL = trace.WriteJSONL
	WriteTraceCSV   = trace.WriteCSV
	CompareTraces   = trace.Compare
	// NewUniformSampler samples k of n clients uniformly without
	// replacement each round (seeded, deterministic).
	NewUniformSampler = sample.NewUniform
	// NewAvailabilitySampler samples only clients whose daily
	// availability window covers the round's hour (charging-overnight
	// phones, §II-A).
	NewAvailabilitySampler = sample.NewAvailability
	// NewDevicePopulation builds an n-client synthetic fleet over the
	// paper's device archetypes with seeded per-client jitter.
	NewDevicePopulation = device.NewPopulation
	// NewPopulationRunner validates a PopulationConfig and profiles its
	// archetypes once, ready for Round calls.
	NewPopulationRunner = fl.NewPopulationRunner
	// SimulatePopulation runs a full population-scale simulation.
	SimulatePopulation = fl.SimulatePopulationRounds
	// ParseFaultSpec parses "crash=0.1,flap=0.05,…" into a FaultPlan
	// (empty spec = nil plan, no faults).
	ParseFaultSpec = fault.ParseSpec
	// LoadRunCheckpoint reads a snapshot written by RunCheckpoint.Save.
	LoadRunCheckpoint = fl.LoadCheckpoint
	// NewCooldownSampler wraps a Sampler with per-client failure backoff
	// (exponential, production-FL style); the engines report outcomes to
	// it automatically.
	NewCooldownSampler = sample.NewCooldown
)

// Architecture constructors (paper scale and reduced scale).
var (
	LeNet      = nn.LeNet
	VGG6       = nn.VGG6
	LeNetSmall = nn.LeNetSmall
	VGG6Small  = nn.VGG6Small
)

// Dataset generators (offline stand-ins for MNIST / CIFAR10).
var (
	SMNIST = data.SMNIST
	SCIFAR = data.SCIFAR
)

// Link presets.
var (
	WiFi = network.WiFi
	LTE  = network.LTE
)

// Schedulers.
var (
	// FedLBAP is Algorithm 1 (IID data, min-makespan).
	FedLBAP sched.Scheduler = sched.FedLBAP{}
	// FedMinAvg is Algorithm 2 (non-IID data, min average cost).
	FedMinAvg sched.Scheduler = sched.FedMinAvg{}
	// Proportional assigns data proportional to mean CPU frequency.
	Proportional sched.Scheduler = sched.Proportional{}
	// RandomSched assigns uniformly random partitions.
	RandomSched sched.Scheduler = sched.Random{}
	// Equal assigns equal shares (the FedAvg default).
	Equal sched.Scheduler = sched.Equal{}
	// FedLBAPSparse is Algorithm 1 re-solved over the implicit cost
	// matrix: bit-identical assignments to FedLBAP on monotone cost
	// curves, but sub-second at a million users (the dense matrix would
	// need 10^10 values). Use it whenever the user count is large.
	FedLBAPSparse sched.Scheduler = sched.SparseFedLBAP{}
)

// ShardSize is the paper's data granularity: 100 samples per shard.
const ShardSize = 100

// Testbed is a profiled collection of simulated phones ready for
// scheduling and federated simulation — the facade over the device,
// profile, network, sched and fl packages.
type Testbed struct {
	Profiles []device.Profile
	Link     network.Link
	// BatteryBudget, when positive, caps each user's per-round workload at
	// the shards its battery affords at that fraction of remaining energy
	// per round — the paper's capacity constraint C_j "quantified by the
	// storage or battery energy" (§VI-A).
	BatteryBudget float64

	profiles map[string]*profile.DeviceProfile
}

// NewTestbed returns one of the paper's testbeds (1, 2 or 3) on WiFi.
// Profiling happens lazily on first schedule.
func NewTestbed(id int) *Testbed {
	return &Testbed{Profiles: device.Testbed(id), Link: network.WiFi()}
}

// NewCustomTestbed builds a testbed from explicit device profiles.
func NewCustomTestbed(profiles []device.Profile, link network.Link) *Testbed {
	return &Testbed{Profiles: profiles, Link: link}
}

// ensureProfiles runs offline profiling (once per device model) for the
// architecture's input geometry.
func (tb *Testbed) ensureProfiles(arch *nn.Arch) error {
	if tb.profiles != nil {
		return nil
	}
	suite := profile.Suite(arch.InC, arch.InH, arch.InW, arch.Classes)
	tb.profiles = make(map[string]*profile.DeviceProfile, len(tb.Profiles))
	for _, p := range tb.Profiles {
		if _, ok := tb.profiles[p.Model]; ok {
			continue
		}
		dp, err := profile.BuildOffline(device.New(p), suite, profile.DefaultSizes)
		if err != nil {
			return fmt.Errorf("fedsched: profiling %s: %w", p.Model, err)
		}
		tb.profiles[p.Model] = dp
	}
	return nil
}

// Request builds a scheduling request for totalSamples of the given
// architecture, with per-user costs from the offline profiles.
func (tb *Testbed) Request(arch *nn.Arch, totalSamples int) (*sched.Request, error) {
	if err := tb.ensureProfiles(arch); err != nil {
		return nil, err
	}
	comm := tb.Link.RoundTripTime(arch.SizeBytes())
	users := make([]*sched.User, len(tb.Profiles))
	for j, p := range tb.Profiles {
		dp := tb.profiles[p.Model]
		users[j] = &sched.User{
			Name:        fmt.Sprintf("%s-%d", p.Model, j),
			Cost:        func(n int) float64 { return dp.Predict(arch, n) },
			CommSeconds: comm,
			MeanFreqGHz: p.MeanFreqGHz(),
		}
		if tb.BatteryBudget > 0 {
			users[j].CapacityShards = device.New(p).CapacityShards(arch, ShardSize, tb.BatteryBudget)
		}
	}
	return &sched.Request{
		TotalShards: totalSamples / ShardSize,
		ShardSize:   ShardSize,
		Users:       users,
	}, nil
}

// ScheduleIID computes the Fed-LBAP (Algorithm 1) schedule for
// totalSamples of IID data.
func (tb *Testbed) ScheduleIID(arch *nn.Arch, totalSamples int) (*sched.Assignment, error) {
	req, err := tb.Request(arch, totalSamples)
	if err != nil {
		return nil, err
	}
	return sched.FedLBAP{}.Schedule(req, nil)
}

// ScheduleNonIID computes the Fed-MinAvg (Algorithm 2) schedule given each
// user's class coverage and the α/β trade-off parameters.
func (tb *Testbed) ScheduleNonIID(arch *nn.Arch, totalSamples int, classSets [][]int, k int, alpha, beta float64) (*sched.Assignment, error) {
	if len(classSets) != len(tb.Profiles) {
		return nil, fmt.Errorf("fedsched: %d class sets for %d devices", len(classSets), len(tb.Profiles))
	}
	req, err := tb.Request(arch, totalSamples)
	if err != nil {
		return nil, err
	}
	for j, u := range req.Users {
		u.Classes = classSets[j]
	}
	req.K, req.Alpha, req.Beta = k, alpha, beta
	return sched.FedMinAvg{}.Schedule(req, nil)
}

// SimulateRounds runs `rounds` synchronous rounds of the assignment on
// fresh devices and returns each round's makespan in simulated seconds.
func (tb *Testbed) SimulateRounds(arch *nn.Arch, asg *sched.Assignment, rounds int) ([]float64, error) {
	devs := make([]*device.Device, len(tb.Profiles))
	links := make([]network.Link, len(tb.Profiles))
	for i, p := range tb.Profiles {
		devs[i] = device.New(p)
		links[i] = tb.Link
	}
	return fl.SimulateRounds(arch, devs, links, asg.Samples(ShardSize), 20, rounds)
}

// RunFederated trains a real model with FedAvg over the partitioned
// dataset on this testbed's simulated devices and returns the history
// (per-round makespans, losses, accuracy).
func (tb *Testbed) RunFederated(cfg fl.Config, train *data.Dataset, part data.Partition, test *data.Dataset) (*fl.History, error) {
	if len(part) != len(tb.Profiles) {
		return nil, fmt.Errorf("fedsched: partition for %d users, testbed has %d devices", len(part), len(tb.Profiles))
	}
	devs := make([]*device.Device, len(tb.Profiles))
	links := make([]network.Link, len(tb.Profiles))
	for i, p := range tb.Profiles {
		devs[i] = device.New(p)
		links[i] = tb.Link
	}
	clients, err := fl.BuildClients(devs, links, part.Materialize(train))
	if err != nil {
		return nil, err
	}
	return fl.Run(cfg, clients, test)
}

// Clients builds federated clients for this testbed from a data partition
// (one per device), for use with RunAsync / RunGossip or a custom loop.
func (tb *Testbed) Clients(train *data.Dataset, part data.Partition) ([]*fl.Client, error) {
	if len(part) != len(tb.Profiles) {
		return nil, fmt.Errorf("fedsched: partition for %d users, testbed has %d devices", len(part), len(tb.Profiles))
	}
	devs := make([]*device.Device, len(tb.Profiles))
	links := make([]network.Link, len(tb.Profiles))
	for i, p := range tb.Profiles {
		devs[i] = device.New(p)
		links[i] = tb.Link
	}
	return fl.BuildClients(devs, links, part.Materialize(train))
}

// Makespan evaluates an assignment's predicted makespan under a request's
// cost model.
func Makespan(req *sched.Request, asg *sched.Assignment) float64 {
	return sched.Makespan(req, asg)
}

// PartitionIID splits ds into n stratified equal partitions.
func PartitionIID(ds *data.Dataset, n int, seed int64) data.Partition {
	return data.IIDEqual(ds, n, rand.New(rand.NewSource(seed)))
}

// PartitionIIDSizes splits ds into stratified partitions of given sizes.
func PartitionIIDSizes(ds *data.Dataset, sizes []int, seed int64) data.Partition {
	return data.IIDSizes(ds, sizes, rand.New(rand.NewSource(seed)))
}

// PartitionByClasses draws sizes[u] samples restricted to classSets[u].
func PartitionByClasses(ds *data.Dataset, classSets [][]int, sizes []int, seed int64) data.Partition {
	return data.ByClassSets(ds, classSets, sizes, rand.New(rand.NewSource(seed)))
}

// Experiment regenerates one of the paper's tables or figures by id
// (fig1..fig7, tab2..tab5); quick reduces training workloads.
func Experiment(id string, quick bool, seed int64) (string, error) {
	d, ok := experiments.Lookup(id)
	if !ok {
		return "", fmt.Errorf("fedsched: unknown experiment %q (have %v)", id, experiments.IDs())
	}
	rep, err := d(experiments.Options{Quick: quick, Seed: seed})
	if err != nil {
		return "", err
	}
	return rep.String(), nil
}

// ExperimentIDs lists the available experiment ids.
func ExperimentIDs() []string { return experiments.IDs() }
