# Tier-1 gate plus the parallel-engine checks. `make check` is what CI
# should run; `race` exercises the worker pools and tensor lane semaphore
# under the race detector (slow: the fl suite retrains real models).

GO ?= go

.PHONY: build test vet lint fmt-check check race race-tensor bench bench-parallel bench-gemm

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fedlint enforces the determinism and allocation-free invariants
# (see DESIGN.md "Determinism & hot-path invariants"); non-zero exit on
# any unsuppressed finding.
lint:
	$(GO) run ./cmd/fedlint ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check: build vet lint test race-tensor

race:
	$(GO) test -race ./internal/fl/... ./internal/tensor/...

# Fast race pass over just the GEMM core and lane semaphore — cheap
# enough (~10s) to gate every `make check`.
race-tensor:
	$(GO) test -race ./internal/tensor/...

bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x -benchmem .

# The serial-vs-pool pair behind BENCH_fl_parallel.json.
bench-parallel:
	$(GO) test -run '^$$' -bench 'BenchmarkRun(Serial|Parallel)$$' -benchtime=3x -benchmem .

# The naive-vs-blocked kernel pairs and layer triples behind BENCH_gemm.json.
bench-gemm:
	$(GO) test -run '^$$' -bench 'BenchmarkGEMM' -benchtime=2s ./internal/tensor/ .
