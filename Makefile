# Tier-1 gate plus the parallel-engine checks. `make fmt-check check` is
# what CI's `check` job runs; `race` exercises the worker pools and
# tensor lane semaphore under the race detector (slow: the fl suite
# retrains real models).

GO ?= go

# Bench-regression gate headroom: fail when the geomean current/baseline
# ns/op ratio exceeds this. Machine-sensitive by construction — the
# BENCH_*.json baselines are absolute numbers from one box — so widen it
# (or re-record the baselines, see README) when moving to new hardware.
BENCH_MAX_SLOWDOWN ?= 1.15

.PHONY: build test vet lint lint-ci lint-baseline \
	fuzz-smoke fuzz-smoke-sched fuzz-smoke-sample fuzz-smoke-fault \
	fmt-check check check-nolint race race-tensor trace-golden \
	bench bench-parallel bench-gemm bench-gemm-f32 bench-sched bench-ci \
	bench-regression bench-regression-serve \
	population-smoke fault-smoke serve-smoke

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fedlint enforces the determinism and allocation-free invariants
# (see DESIGN.md "Determinism & hot-path invariants"): the per-package
# passes plus the interprocedural ones over the repo-wide call graph.
# Non-zero exit on any finding not accepted by .fedlint-baseline.json.
lint:
	$(GO) run ./cmd/fedlint ./...

# CI flavour of lint: same gate, but findings come out as GitHub Actions
# ::error annotations so they land on the diff view.
lint-ci:
	$(GO) run ./cmd/fedlint -github ./...

# Accept every current finding into the baseline ledger. The diff to
# .fedlint-baseline.json is reviewed like code — prefer fixing or a
# justified fedlint:allow.
lint-baseline:
	$(GO) run ./cmd/fedlint -write-baseline ./...

# Short native-fuzz pass over the property-based targets: the sparse
# Fed-LBAP solver against the dense oracle, the cohort samplers'
# sortedness/bounds/determinism contract, and the fault plan's
# spec-parse/draw invariants. Seeds live under testdata/fuzz; CI runs
# this in the lint lane. Each target is its own recipe so one failing
# fuzzer no longer hides the others: the umbrella runs all three and
# fails at the end with the full list of failed targets.
FUZZTIME ?= 10s
fuzz-smoke-sched:
	$(GO) test ./internal/sched -run '^$$' -fuzz FuzzSparseFedLBAP -fuzztime $(FUZZTIME)

fuzz-smoke-sample:
	$(GO) test ./internal/sample -run '^$$' -fuzz FuzzCohort -fuzztime $(FUZZTIME)

fuzz-smoke-fault:
	$(GO) test ./internal/fault -run '^$$' -fuzz FuzzFaultPlan -fuzztime $(FUZZTIME)

fuzz-smoke:
	@failed=""; \
	for t in fuzz-smoke-sched fuzz-smoke-sample fuzz-smoke-fault; do \
		$(MAKE) $$t FUZZTIME=$(FUZZTIME) || failed="$$failed $$t"; \
	done; \
	if [ -n "$$failed" ]; then \
		echo "fuzz-smoke: failed targets:$$failed"; exit 1; \
	fi

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Deliberately omits the full `race` target (only the ~10s race-tensor
# pass): the fl race suite retrains real models for minutes, far too
# slow to gate every local pre-push run. CI covers the gap — its `race`
# job runs `make race` on every push in parallel with this gate.
check: build vet lint test race-tensor

# The check gate without the lint pass — what CI's `check` job runs now
# that lint has its own cached job (with annotations and the fuzz
# smoke). Local pre-push runs should keep using `make check`.
check-nolint: build vet test race-tensor

race:
	$(GO) test -race ./internal/fl/... ./internal/tensor/... ./internal/serve/...

# Fast race pass over just the GEMM core and lane semaphore — cheap
# enough (~10s) to gate every `make check`.
race-tensor:
	$(GO) test -race ./internal/tensor/...

# Regenerate the golden round traces under testdata/trace after an
# intentional behaviour change, then review the diff before committing
# (see README "Round traces & goldens").
trace-golden:
	$(GO) test -run 'TestGoldenTrace' . -args -update-golden

bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x -benchmem .

# The serial-vs-pool pair behind BENCH_fl_parallel.json.
bench-parallel:
	$(GO) test -run '^$$' -bench 'BenchmarkRun(Serial|Parallel)$$' -benchtime=3x -benchmem .

# The naive-vs-blocked kernel pairs and layer triples behind BENCH_gemm.json.
bench-gemm:
	$(GO) test -run '^$$' -bench 'BenchmarkGEMM' -benchtime=2s ./internal/tensor/ .

# The float32 kernels: blocked f32 shapes, the register-tile bake-off and
# the implicit-GEMM vs im2col convolution pairs behind BENCH_gemm.json's
# f32 sections.
bench-gemm-f32:
	$(GO) test -run '^$$' \
		-bench 'GEMMBlockedF32|GEMMF32Tile|BenchmarkConv(Im2Col|Implicit)|GEMMF32_(LeNet|VGG6)$$' \
		-benchtime=2s -benchmem ./internal/tensor/ .

# Population-scale scheduling: the sparse/dense solver pair and the
# O(selected) round loop at 10^3..10^6 clients, behind BENCH_sched.json.
bench-sched:
	$(GO) test -run '^$$' -bench 'FedLBAPSparse|FedLBAPDense|BenchmarkRoundLoop' \
		-benchtime=3x -benchmem .

# CI bench smoke: 5 repetitions of the gated benchmarks; the raw output
# feeds bench-regression and is uploaded as a CI artifact.
bench-ci:
	$(GO) test -run '^$$' \
		-bench 'GEMM(F32)?_(LeNet|VGG6)$$|Run(Serial|Parallel)$$|FedLBAPSparse|BenchmarkRoundLoop' \
		-benchtime=3x -count=5 . | tee bench-results.txt

# Compare the bench-ci output against the recorded baselines; benchdiff
# takes the min ns/op over the 5 reps and fails on a >15% geomean
# slowdown (override with BENCH_MAX_SLOWDOWN=1.30 etc.). Also gates the
# serving numbers when a fresh artifacts/BENCH_serve.json is present
# (produced by `make serve-smoke`).
bench-regression: bench-regression-serve
	$(GO) run ./cmd/benchdiff -bench bench-results.txt \
		-baseline BENCH_gemm.json -baseline BENCH_fl_parallel.json \
		-baseline BENCH_sched.json \
		-max-slowdown $(BENCH_MAX_SLOWDOWN)

# Gate the serving latency/throughput numbers (p50/p99 job latency,
# ns-per-job) against the recorded BENCH_serve.json, same geomean rule.
# Skips quietly when serve-smoke has not produced a current measurement.
bench-regression-serve:
	@if [ -f artifacts/BENCH_serve.json ]; then \
		$(GO) run ./cmd/benchdiff -bench-json artifacts/BENCH_serve.json \
			-baseline BENCH_serve.json \
			-max-slowdown $(BENCH_MAX_SLOWDOWN); \
	else \
		echo "bench-regression-serve: artifacts/BENCH_serve.json not found; run 'make serve-smoke' first (skipping)"; \
	fi

# 100K-client fixed-seed population smoke: build, solve and trace one
# scheduling round over a fleet three orders of magnitude past the
# testbed. CI runs this in the bench job and uploads the trace artifact;
# the run is deterministic, so the trace doubles as a debugging golden.
population-smoke:
	mkdir -p artifacts
	$(GO) run ./cmd/fedsim -population 100000 -cohort 64 -pop-rounds 1 \
		-seed 42 -trace artifacts/population-smoke.jsonl

# The same 100K-client fleet under an aggressive fixed-seed fault plan:
# over-selection absorbs the crashes, the quorum closes the round, the
# cooldown benches repeat offenders, and -min-participants keeps a
# decimated round from aborting the run. Deterministic end to end; CI
# runs it in the check job and uploads the trace (KindFault events,
# faulted/late flags) as an artifact.
fault-smoke:
	mkdir -p artifacts
	$(GO) run ./cmd/fedsim -population 100000 -cohort 64 -pop-rounds 2 \
		-seed 42 -fault-seed 7 \
		-faults 'crash=0.2,battery=0.05,flap=0.1,corrupt=0.05,degrade=0.3,slow=4' \
		-overselect 0.5 -min-participants 32 -cooldown 2 \
		-trace artifacts/fault-smoke.jsonl

# End-to-end serving smoke (scripts/serve-smoke.sh): boots fedserve on a
# loopback ephemeral port, drives a fixed-seed 3-job mix through fedload
# (writing artifacts/BENCH_serve.json), then repeats the mix with a hard
# kill -9 mid-run and a daemon restart, asserting the resumed jobs'
# traces and round histories are byte-identical to the uninterrupted
# run. Deterministic end to end; CI runs it in the serve job.
serve-smoke:
	./scripts/serve-smoke.sh
